//! Top-K critical path enumeration.
//!
//! Best-first search over the timing DAG using an exact
//! remaining-delay bound ψ (the classic k-longest-paths deviation
//! method): a state `(prefix delay + ψ(v), v)` is popped from a max-heap
//! and extended along every timing edge; "finishing" at an endpoint is a
//! special extension. Because ψ is exact, paths are emitted in strictly
//! non-increasing total-delay order, so the first K finishes are exactly
//! the K most critical paths.

use crate::engine::TimingReport;
use crate::incremental::{IncrementalSta, TopKStats};
use dme_netlist::{InstId, Netlist};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// One enumerated timing path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Instances along the path, startpoint first.
    pub instances: Vec<InstId>,
    /// Total path delay including the endpoint setup time, ns.
    pub delay_ns: f64,
    /// Slack against the report's MCT, ns (zero for the most critical
    /// path).
    pub slack_ns: f64,
}

/// Persistent list node for sharing path prefixes between heap states.
struct PathNode {
    inst: InstId,
    prev: Option<Rc<PathNode>>,
}

fn materialize(node: &Rc<PathNode>) -> Vec<InstId> {
    let mut v = Vec::new();
    let mut cur = Some(node.clone());
    while let Some(n) = cur {
        v.push(n.inst);
        cur = n.prev.clone();
    }
    v.reverse();
    v
}

struct State {
    est: f64,
    prefix: f64,
    /// `None` marks a finish state (the path is complete).
    at: Option<InstId>,
    path: Rc<PathNode>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.est == other.est
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        self.est.total_cmp(&other.est)
    }
}

/// Timing-edge context shared by ψ computation and enumeration.
struct PathGraph<'a> {
    nl: &'a Netlist,
    report: &'a TimingReport,
    /// Endpoint weight of each instance (wire + setup to the worst
    /// endpoint it drives), or `None` if it drives no endpoint.
    end_weight: Vec<Option<f64>>,
    /// ψ: exact max delay-to-endpoint from each instance output.
    psi: Vec<f64>,
    /// Combinational successors with edge weights `wire + gate_delay(q)`.
    succ: Vec<Vec<(InstId, f64)>>,
}

impl<'a> PathGraph<'a> {
    fn build(nl: &'a Netlist, report: &'a TimingReport, setup_ns: &[f64]) -> Self {
        let n = nl.num_instances();
        let mut end_weight: Vec<Option<f64>> = vec![None; n];
        let mut succ: Vec<Vec<(InstId, f64)>> = vec![Vec::new(); n];

        for id in nl.inst_ids() {
            let inst = nl.instance(id);
            let out_net = inst.output.0 as usize;
            let wire = report.wire_delay_ns[out_net];
            if nl.net(inst.output).is_primary_output {
                let w = end_weight[id.0 as usize].get_or_insert(0.0);
                *w = w.max(0.0);
            }
            let mut seen_comb: Option<InstId> = None;
            for &(sink, pin) in &nl.net(inst.output).sinks {
                let s = sink.0 as usize;
                if nl.instance(sink).is_sequential {
                    if pin == 0 {
                        let w = wire + setup_ns[s];
                        let e = end_weight[id.0 as usize].get_or_insert(w);
                        *e = e.max(w);
                    }
                } else {
                    // A gate can take the same net on several pins; the
                    // timing edge is the same, so dedup consecutive sinks
                    // (sinks of one net are grouped by construction).
                    if seen_comb == Some(sink)
                        || succ[id.0 as usize].iter().any(|&(q, _)| q == sink)
                    {
                        continue;
                    }
                    seen_comb = Some(sink);
                    succ[id.0 as usize].push((sink, wire + report.gate_delay_ns[s]));
                }
            }
        }

        // ψ in reverse topological order.
        let order = nl.topo_order().expect("acyclic");
        let mut psi = vec![f64::NEG_INFINITY; n];
        for &id in order.iter().rev() {
            let i = id.0 as usize;
            let mut best = end_weight[i].unwrap_or(f64::NEG_INFINITY);
            for &(q, w) in &succ[i] {
                best = best.max(w + psi[q.0 as usize]);
            }
            psi[i] = best;
        }
        Self {
            nl,
            report,
            end_weight,
            psi,
            succ,
        }
    }

    /// Startpoints with their base delays: sequential outputs (clk→Q) and
    /// PI-fed combinational gates (pad wire + gate delay).
    fn starts(&self) -> Vec<(InstId, f64)> {
        let mut starts = Vec::new();
        for id in self.nl.inst_ids() {
            let inst = self.nl.instance(id);
            let i = id.0 as usize;
            if inst.is_sequential {
                starts.push((id, self.report.gate_delay_ns[i]));
                continue;
            }
            // Combinational gate with at least one PI input: its PI-driven
            // arrival can begin a path.
            let mut pi_arr: Option<f64> = None;
            for &net in &inst.inputs {
                if self.nl.net(net).driver.is_none() {
                    let w = self.report.wire_delay_ns[net.0 as usize];
                    let a = w + self.report.gate_delay_ns[i];
                    pi_arr = Some(pi_arr.map_or(a, |x: f64| x.max(a)));
                }
            }
            if let Some(a) = pi_arr {
                starts.push((id, a));
            }
        }
        starts
    }
}

/// Reports the single worst path to every timing endpoint (FF data pins
/// and primary outputs), sorted most-critical first — the default view a
/// signoff timer (PrimeTime) gives and the path population the paper's
/// Table VII / dosePl operate on. Unlike [`top_k_paths`], which
/// enumerates *all* paths in delay order (and therefore drowns in the
/// combinatorial near-critical path cloud of reconvergent logic), this is
/// `O(endpoints × depth)`.
///
/// # Panics
///
/// Panics if `setup_ns` does not match the instance count.
pub fn worst_path_per_endpoint(
    nl: &Netlist,
    report: &TimingReport,
    setup_ns: &[f64],
) -> Vec<TimingPath> {
    worst_paths_per_endpoint_k(nl, report, setup_ns, usize::MAX)
}

/// Backtraces the max-arrival chain from a driver instance — the single
/// worst path into the endpoint that driver feeds. Shared by the
/// report-based oracle ([`worst_path_per_endpoint`]) and the
/// incremental-state enumerator ([`worst_paths_top_k`]); both hand it
/// bitwise-identical `arrival`/`wire_delay` arrays, so the traced
/// chains are identical too.
fn trace_max_arrival_chain(
    nl: &Netlist,
    arrival: &[f64],
    wire_delay: &[f64],
    mut cur: InstId,
) -> Vec<InstId> {
    let mut chain = vec![cur];
    loop {
        let inst = nl.instance(cur);
        if inst.is_sequential {
            break;
        }
        let mut best: Option<(f64, InstId)> = None;
        let mut pi_arr = f64::NEG_INFINITY;
        for &net in &inst.inputs {
            let wire = wire_delay[net.0 as usize];
            match nl.net(net).driver {
                Some(drv) => {
                    let a = arrival[drv.0 as usize] + wire;
                    if best.is_none_or(|(b, _)| a > b) {
                        best = Some((a, drv));
                    }
                }
                None => pi_arr = pi_arr.max(wire),
            }
        }
        match best {
            Some((a, drv)) if a >= pi_arr => {
                chain.push(drv);
                cur = drv;
            }
            _ => break, // path launches from a primary input
        }
    }
    chain.reverse();
    chain
}

/// [`worst_path_per_endpoint`] capped at the `k` worst endpoints by
/// partial selection: endpoint delays are computed without backtracing,
/// `select_nth_unstable_by` isolates the K worst, only the head is
/// sorted, and only those K endpoints are traced — O(E + K·(log K +
/// depth)) instead of the full O(E log E) sort plus O(E) backtraces.
///
/// The comparator orders by delay descending with ties broken by
/// endpoint enumeration order (FF data pins in instance order, then
/// primary outputs), which is exactly the order the stable sort in the
/// uncapped walk produces — so the result is bitwise identical to
/// `worst_path_per_endpoint(..)` truncated to `k`.
///
/// # Panics
///
/// Panics if `setup_ns` does not match the instance count.
pub fn worst_paths_per_endpoint_k(
    nl: &Netlist,
    report: &TimingReport,
    setup_ns: &[f64],
    k: usize,
) -> Vec<TimingPath> {
    assert_eq!(setup_ns.len(), nl.num_instances());
    if k == 0 {
        return Vec::new();
    }
    // (delay, enumeration index, endpoint driver) — backtraces deferred
    // until after selection.
    let mut eps: Vec<(f64, u32, InstId)> = Vec::new();
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        if inst.is_sequential {
            let data = inst.inputs[0];
            if let Some(drv) = nl.net(data).driver {
                let delay = report.arrival_ns[drv.0 as usize]
                    + report.wire_delay_ns[data.0 as usize]
                    + setup_ns[id.0 as usize];
                eps.push((delay, eps.len() as u32, drv));
            }
        }
    }
    for &po in &nl.primary_outputs {
        if let Some(drv) = nl.net(po).driver {
            let delay = report.arrival_ns[drv.0 as usize];
            eps.push((delay, eps.len() as u32, drv));
        }
    }
    let by_criticality = |a: &(f64, u32, InstId), b: &(f64, u32, InstId)| {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
    };
    if k < eps.len() {
        eps.select_nth_unstable_by(k - 1, by_criticality);
        eps.truncate(k);
    }
    eps.sort_unstable_by(by_criticality);
    eps.into_iter()
        .map(|(delay, _, drv)| TimingPath {
            instances: trace_max_arrival_chain(
                nl,
                &report.arrival_ns,
                &report.wire_delay_ns,
                drv,
            ),
            delay_ns: delay,
            slack_ns: report.mct_ns - delay,
        })
        .collect()
}

/// The `k` worst endpoint paths straight from an [`IncrementalSta`]'s
/// lazily maintained per-endpoint contribution state — no full-design
/// `analyze`, no full endpoint sort. Costs O(k·depth) backtraces plus
/// the heap pops ([`TopKStats`] reports how many), so round startup in
/// a swap loop is proportional to the paths actually consumed.
///
/// Bitwise contract: after any retime/undo sequence, the returned
/// paths equal `worst_path_per_endpoint(..)` truncated to `k` — same
/// instance chains, same `delay_ns`/`slack_ns` bits, same order —
/// because the endpoint table mirrors the oracle's enumeration order,
/// `ep_value` uses the oracle's delay expression, and the heap breaks
/// ties toward lower endpoint indices exactly like the stable sort.
pub fn worst_paths_top_k(inc: &mut IncrementalSta<'_>, k: usize) -> (Vec<TimingPath>, TopKStats) {
    let (eps, stats) = inc.worst_endpoints_top_k(k);
    // The first live pop is the global max contribution, so it yields
    // the MCT with the same clamp `engine::mct_from_arrivals` applies.
    let mct = eps.first().map_or(0.0, |&(v, _)| 0.0f64.max(v));
    let nl = inc.netlist();
    let arrival = inc.arrival_ns();
    let wires = inc.wire_delay_ns();
    let paths = eps
        .iter()
        .map(|&(delay, drv)| TimingPath {
            instances: trace_max_arrival_chain(nl, arrival, wires, drv),
            delay_ns: delay,
            slack_ns: mct - delay,
        })
        .collect();
    (paths, stats)
}

/// Enumerates the top-`k` critical paths of an analyzed design.
///
/// `setup_ns` must give the setup time of every instance (zero for
/// combinational cells) — obtain it from the library masters.
///
/// # Panics
///
/// Panics if `setup_ns` does not match the instance count.
pub fn top_k_paths(
    nl: &Netlist,
    report: &TimingReport,
    setup_ns: &[f64],
    k: usize,
) -> Vec<TimingPath> {
    assert_eq!(setup_ns.len(), nl.num_instances());
    let g = PathGraph::build(nl, report, setup_ns);
    let mut heap: BinaryHeap<State> = BinaryHeap::new();
    for (id, base) in g.starts() {
        let i = id.0 as usize;
        if g.psi[i] == f64::NEG_INFINITY {
            continue;
        }
        heap.push(State {
            est: base + g.psi[i],
            prefix: base,
            at: Some(id),
            path: Rc::new(PathNode {
                inst: id,
                prev: None,
            }),
        });
    }
    let mut out = Vec::with_capacity(k);
    while let Some(s) = heap.pop() {
        match s.at {
            None => {
                out.push(TimingPath {
                    instances: materialize(&s.path),
                    delay_ns: s.prefix,
                    slack_ns: report.mct_ns - s.prefix,
                });
                if out.len() >= k {
                    break;
                }
            }
            Some(v) => {
                let i = v.0 as usize;
                if let Some(ew) = g.end_weight[i] {
                    heap.push(State {
                        est: s.prefix + ew,
                        prefix: s.prefix + ew,
                        at: None,
                        path: s.path.clone(),
                    });
                }
                for &(q, w) in &g.succ[i] {
                    let qi = q.0 as usize;
                    if g.psi[qi] == f64::NEG_INFINITY {
                        continue;
                    }
                    heap.push(State {
                        est: s.prefix + w + g.psi[qi],
                        prefix: s.prefix + w,
                        at: Some(q),
                        path: Rc::new(PathNode {
                            inst: q,
                            prev: Some(s.path.clone()),
                        }),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze, GeometryAssignment};
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    fn setup() -> (Library, dme_netlist::Design, dme_placement::Placement) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        (lib, d, p)
    }

    fn setups(lib: &Library, nl: &Netlist) -> Vec<f64> {
        nl.instances
            .iter()
            .map(|i| lib.cell(i.cell_idx).setup_ns(lib.tech()))
            .collect()
    }

    #[test]
    fn paths_come_out_in_descending_delay_order() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let paths = top_k_paths(&d.netlist, &r, &setups(&lib, &d.netlist), 50);
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].delay_ns >= w[1].delay_ns - 1e-12);
        }
    }

    #[test]
    fn worst_path_delay_equals_mct() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let paths = top_k_paths(&d.netlist, &r, &setups(&lib, &d.netlist), 1);
        assert_eq!(paths.len(), 1);
        assert!(
            (paths[0].delay_ns - r.mct_ns).abs() < 1e-9,
            "top path {} vs MCT {}",
            paths[0].delay_ns,
            r.mct_ns
        );
        assert!(paths[0].slack_ns.abs() < 1e-9);
    }

    #[test]
    fn paths_are_connected_chains() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let paths = top_k_paths(&d.netlist, &r, &setups(&lib, &d.netlist), 20);
        for path in &paths {
            for pair in path.instances.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let out = d.netlist.instance(a).output;
                assert!(
                    d.netlist.net(out).sinks.iter().any(|&(s, _)| s == b),
                    "path edge {a}->{b} is not a netlist edge"
                );
            }
        }
    }

    #[test]
    fn paths_are_distinct() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let paths = top_k_paths(&d.netlist, &r, &setups(&lib, &d.netlist), 100);
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert!(
                    paths[i].instances != paths[j].instances,
                    "duplicate path at {i}/{j}"
                );
            }
        }
    }

    #[test]
    fn endpoint_paths_cover_every_endpoint() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let paths = worst_path_per_endpoint(&d.netlist, &r, &setups(&lib, &d.netlist));
        let n_ff = d
            .netlist
            .instances
            .iter()
            .filter(|i| i.is_sequential)
            .count();
        let n_po = d.netlist.primary_outputs.len();
        assert_eq!(paths.len(), n_ff + n_po);
        // Sorted most-critical first and the top path matches the MCT.
        for w in paths.windows(2) {
            assert!(w[0].delay_ns >= w[1].delay_ns);
        }
        assert!((paths[0].delay_ns - r.mct_ns).abs() < 1e-9);
        // Each path is a connected chain ending at the endpoint driver.
        for path in &paths {
            for pair in path.instances.windows(2) {
                let out = d.netlist.instance(pair[0]).output;
                assert!(d.netlist.net(out).sinks.iter().any(|&(s, _)| s == pair[1]));
            }
        }
    }

    #[test]
    fn endpoint_paths_agree_with_full_enumeration_on_the_worst() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let setup_t = setups(&lib, &d.netlist);
        let full = top_k_paths(&d.netlist, &r, &setup_t, 1);
        let per_ep = worst_path_per_endpoint(&d.netlist, &r, &setup_t);
        assert!((full[0].delay_ns - per_ep[0].delay_ns).abs() < 1e-9);
    }

    #[test]
    fn k_limits_output() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let paths = top_k_paths(&d.netlist, &r, &setups(&lib, &d.netlist), 7);
        assert!(paths.len() <= 7);
    }

    fn assert_paths_bitwise_equal(a: &[TimingPath], b: &[TimingPath], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.instances, y.instances, "{what}: instances of path {i}");
            assert_eq!(
                x.delay_ns.to_bits(),
                y.delay_ns.to_bits(),
                "{what}: delay of path {i}"
            );
            assert_eq!(
                x.slack_ns.to_bits(),
                y.slack_ns.to_bits(),
                "{what}: slack of path {i}"
            );
        }
    }

    #[test]
    fn partial_selection_matches_truncated_full_walk() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        let setup_t = setups(&lib, &d.netlist);
        let full = worst_path_per_endpoint(&d.netlist, &r, &setup_t);
        for k in [0, 1, 2, 5, full.len().saturating_sub(1), full.len(), full.len() + 10] {
            let capped = worst_paths_per_endpoint_k(&d.netlist, &r, &setup_t, k);
            let mut want = full.clone();
            want.truncate(k);
            assert_paths_bitwise_equal(&capped, &want, &format!("k = {k}"));
        }
    }

    #[test]
    fn incremental_top_k_matches_oracle_fresh_and_after_perturbations() {
        let (lib, d, mut p) = setup();
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let setup_t = setups(&lib, &d.netlist);
        let check = |inc: &mut IncrementalSta<'_>,
                     p: &dme_placement::Placement,
                     doses: &GeometryAssignment,
                     what: &str| {
            let r = analyze(&lib, &d.netlist, p, doses);
            let oracle = worst_path_per_endpoint(&d.netlist, &r, &setup_t);
            for k in [1, 3, oracle.len(), oracle.len() + 5] {
                let (paths, stats) = worst_paths_top_k(inc, k);
                let mut want = oracle.clone();
                want.truncate(k);
                assert_paths_bitwise_equal(&paths, &want, &format!("{what}, k = {k}"));
                assert_eq!(
                    stats.endpoints_popped,
                    paths.len() as u64 + stats.stale_discards,
                    "{what}: every pop is a selection or a discard"
                );
            }
        };
        check(&mut inc, &p, &doses, "fresh");
        // Perturb: moves and re-doses through the push path, with a
        // rejected trial in between so undo-replay residue (duplicate
        // live heap entries) is exercised too.
        inc.set_journal(true);
        let mut pd = dme_placement::PlacementDelta::default();
        for step in 0..6u32 {
            let mark = inc.mark();
            let jm = pd.mark();
            let (a, b) = (
                InstId((step * 3 + 1) % n as u32),
                InstId((step * 7 + 4) % n as u32),
            );
            let mut touched = Vec::new();
            if a != b {
                p.swap_cells_tracked(a, b, &mut pd);
                touched = pd.touched_since(jm);
            }
            let redosed = (step as usize * 5) % n;
            let old_dose = doses.dl_nm[redosed];
            doses.dl_nm[redosed] = -4.0 + (step % 5) as f64;
            touched.push(InstId(redosed as u32));
            inc.retime_touched(&p, &doses, &touched);
            if step % 2 == 0 {
                // Reject the trial: replay both journals back.
                pd.undo_to(&mut p, jm);
                doses.dl_nm[redosed] = old_dose;
                inc.undo_to(mark);
            }
            check(&mut inc, &p, &doses, &format!("step {step}"));
        }
    }
}
