//! Block-based static timing analysis.
//!
//! The forward (arrival) passes are *levelized*: gates are grouped by
//! topological depth ([`dme_netlist::TopoLevels`]) and each level's gates
//! — which have no timing dependencies on each other — are evaluated in
//! parallel. Per-gate results land in disjoint slots and no cross-gate
//! reductions exist, so the parallel and serial analyses are bitwise
//! identical ([`StaMode`] only changes wall-clock time).

use crate::wire::WireModel;
use dme_liberty::{Library, VariantCache};
use dme_netlist::{InstId, NetId, Netlist};
use dme_placement::Placement;

/// Execution strategy for [`analyze_with_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaMode {
    /// Single-threaded level-order evaluation.
    Serial,
    /// Fan each sufficiently large level out to the thread pool — when
    /// the pool can actually deliver parallelism. On a width-1 pool (or
    /// with the serial switch on) every fork-join call degrades to an
    /// inline loop, so this mode dispatches to the serial pass rather
    /// than paying the level-partitioning overhead for nothing.
    Parallel,
    /// Same dispatch rule as [`StaMode::Parallel`] (kept distinct so
    /// explicit mode requests remain visible in configs and manifests).
    #[default]
    Auto,
}

impl StaMode {
    fn parallel(self) -> bool {
        match self {
            StaMode::Serial => false,
            StaMode::Parallel | StaMode::Auto => dme_par::effective_parallelism() > 1,
        }
    }
}

/// Minimum gates in a level before its evaluation fans out; below this
/// the fork-join overhead exceeds the NLDM interpolation work.
const LEVEL_PAR_CUTOFF: usize = 64;

/// Minimum net count before the load/wire-delay pass fans out.
const NET_PAR_CUTOFF: usize = 2048;

/// Per-instance gate-length / gate-width deltas (nm) induced by a dose
/// map. This is the hand-off artifact between dose optimization and
/// golden analysis: `ΔL = Ds · d^P`, `ΔW = Ds · d^A`.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryAssignment {
    /// Gate-length delta per instance, nm.
    pub dl_nm: Vec<f64>,
    /// Gate-width delta per instance, nm.
    pub dw_nm: Vec<f64>,
}

impl GeometryAssignment {
    /// All-nominal geometry (the pre-optimization state).
    pub fn nominal(n: usize) -> Self {
        Self {
            dl_nm: vec![0.0; n],
            dw_nm: vec![0.0; n],
        }
    }

    /// Uniform deltas for every instance (the Table II/III dose sweeps).
    pub fn uniform(n: usize, dl_nm: f64, dw_nm: f64) -> Self {
        Self {
            dl_nm: vec![dl_nm; n],
            dw_nm: vec![dw_nm; n],
        }
    }

    /// Number of instances covered.
    pub fn len(&self) -> usize {
        self.dl_nm.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.dl_nm.is_empty()
    }
}

/// Output of [`analyze`]: everything downstream consumers need.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time at each instance output, ns (startpoint-relative).
    pub arrival_ns: Vec<f64>,
    /// Required time at each instance output for the analyzed clock, ns.
    pub required_ns: Vec<f64>,
    /// Slack at each instance output, ns.
    pub slack_ns: Vec<f64>,
    /// Gate propagation delay used for each instance, ns.
    pub gate_delay_ns: Vec<f64>,
    /// Worst input slew seen by each instance, ns.
    pub input_slew_ns: Vec<f64>,
    /// Output slew of each instance, ns.
    pub output_slew_ns: Vec<f64>,
    /// Capacitive load at each instance output, fF.
    pub load_ff: Vec<f64>,
    /// Wire delay of each net (driver output to any sink), ns.
    pub wire_delay_ns: Vec<f64>,
    /// Earliest (best-case) arrival time at each instance output, ns —
    /// the hold-analysis corner.
    pub arrival_min_ns: Vec<f64>,
    /// Best-case (min of rise/fall) gate delay used in the early pass, ns.
    pub gate_delay_best_ns: Vec<f64>,
    /// Worst hold slack over all flip-flop data pins, ns (positive =
    /// no race; `+inf` if the design has no flip-flops).
    pub worst_hold_slack_ns: f64,
    /// Minimum cycle time: worst endpoint path delay (FF setup included),
    /// ns.
    pub mct_ns: f64,
    /// Total leakage power, µW (golden exponential model).
    pub total_leakage_uw: f64,
}

/// Default slew assumed at primary-input pads, ns.
pub(crate) const PI_SLEW_NS: f64 = 0.03;

/// Per-net `(sink pin cap fF, total load fF, wire delay ns)` at the given
/// placement and geometry. Shared by the full and incremental analyses so
/// both compute bitwise-identical values.
pub(crate) fn net_props(
    lib: &Library,
    nl: &Netlist,
    placement: &Placement,
    doses: &GeometryAssignment,
    wire: &WireModel,
    net_idx: usize,
) -> (f64, f64, f64) {
    let tech = lib.tech();
    let net = NetId(net_idx as u32);
    let mut pin_cap = 0.0;
    for &(sink, _) in &nl.net(net).sinks {
        let s = sink.0 as usize;
        pin_cap +=
            lib.cell(nl.instance(sink).cell_idx)
                .input_cap_ff(tech, doses.dl_nm[s], doses.dw_nm[s]);
    }
    let hpwl = placement.net_hpwl(lib, nl, net);
    (
        pin_cap,
        pin_cap + wire.wire_cap_ff(hpwl),
        wire.wire_delay_ns(hpwl, pin_cap),
    )
}

/// Late-pass evaluation of one gate: `(load, gate delay, arrival, input
/// slew, output slew)`. Reads only strictly-lower-level fanin state, so
/// gates of one topological level may be evaluated concurrently. Shared
/// by the full and incremental analyses.
#[allow(clippy::too_many_arguments)]
pub(crate) fn late_gate(
    nl: &Netlist,
    cache: &VariantCache<'_>,
    doses: &GeometryAssignment,
    net_load_ff: &[f64],
    net_wire_delay: &[f64],
    arrival: &[f64],
    out_slew: &[f64],
    id: InstId,
) -> (f64, f64, f64, f64, f64) {
    let i = id.0 as usize;
    let inst = nl.instance(id);
    let out_load = net_load_ff[inst.output.0 as usize];
    let tables = cache.tables(inst.cell_idx, doses.dl_nm[i], doses.dw_nm[i]);
    if inst.is_sequential {
        // Launch point: arrival at Q is the clk→Q delay.
        let d = tables.delay_worst(PI_SLEW_NS, out_load);
        let slew_out = tables.out_slew_worst(PI_SLEW_NS, out_load);
        return (out_load, d, d, PI_SLEW_NS, slew_out);
    }
    // Worst input arrival and slew over fanin pins.
    let mut arr = 0.0f64;
    let mut slew = PI_SLEW_NS;
    for &net in &inst.inputs {
        let ni = net.0 as usize;
        if let Some(drv) = nl.net(net).driver {
            let d = drv.0 as usize;
            arr = arr.max(arrival[d] + net_wire_delay[ni]);
            // Wire degrades the transition; two wire time-constants.
            slew = slew.max(out_slew[d] + 2.0 * net_wire_delay[ni]);
        } else {
            // Primary input: arrival 0 at pad plus wire to this pin.
            arr = arr.max(net_wire_delay[ni]);
        }
    }
    let d = tables.delay_worst(slew, out_load);
    (
        out_load,
        d,
        arr + d,
        slew,
        tables.out_slew_worst(slew, out_load),
    )
}

/// Minimum cycle time implied by `arrival`: the worst endpoint path delay
/// with FF setup included. Shared by the full and incremental analyses.
pub(crate) fn mct_from_arrivals(
    lib: &Library,
    nl: &Netlist,
    arrival: &[f64],
    net_wire_delay: &[f64],
) -> f64 {
    let tech = lib.tech();
    let mut mct = 0.0f64;
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        if inst.is_sequential {
            let data_net = inst.inputs[0];
            let ni = data_net.0 as usize;
            if let Some(drv) = nl.net(data_net).driver {
                let setup = lib.cell(inst.cell_idx).setup_ns(tech);
                mct = mct.max(arrival[drv.0 as usize] + net_wire_delay[ni] + setup);
            }
        }
    }
    for &po in &nl.primary_outputs {
        if let Some(drv) = nl.net(po).driver {
            mct = mct.max(arrival[drv.0 as usize]);
        }
    }
    mct
}

/// Runs golden STA + leakage analysis on a placed netlist under a
/// geometry assignment.
///
/// The clock for required-time/slack computation is the design's own MCT,
/// so the worst slack is exactly zero — the convention the paper's slack
/// profiles (Fig. 10) use.
///
/// # Panics
///
/// Panics if the netlist has a combinational cycle or the assignment
/// length does not match the instance count.
pub fn analyze(
    lib: &Library,
    nl: &Netlist,
    placement: &Placement,
    doses: &GeometryAssignment,
) -> TimingReport {
    analyze_with_mode(lib, nl, placement, doses, StaMode::Auto)
}

/// [`analyze`] with an explicit serial/parallel execution strategy. The
/// returned report is bitwise identical across modes.
///
/// # Panics
///
/// Panics if the netlist has a combinational cycle or the assignment
/// length does not match the instance count.
pub fn analyze_with_mode(
    lib: &Library,
    nl: &Netlist,
    placement: &Placement,
    doses: &GeometryAssignment,
    mode: StaMode,
) -> TimingReport {
    assert_eq!(
        doses.len(),
        nl.num_instances(),
        "assignment/netlist size mismatch"
    );
    let _span = dme_obs::span("sta_analyze");
    let tech = lib.tech();
    let wire = WireModel::for_tech(tech);
    let cache = VariantCache::new(lib);
    let n = nl.num_instances();
    let par = mode.parallel();
    dme_obs::counter_add("sta/analyze_calls", 1);
    dme_obs::counter_add("sta/gates_evaluated", n as u64);
    dme_obs::counter_add(
        if par {
            "sta/analyze_parallel"
        } else {
            "sta/analyze_serial"
        },
        1,
    );

    // --- output load per net: wire cap + sink pin caps at sink geometry ---
    let props_of = |net_idx: usize| net_props(lib, nl, placement, doses, &wire, net_idx);
    let mut net_sink_cap = vec![0.0f64; nl.num_nets()];
    let mut net_load_ff = vec![0.0f64; nl.num_nets()];
    let mut net_wire_delay = vec![0.0f64; nl.num_nets()];
    if par && nl.num_nets() >= NET_PAR_CUTOFF {
        let mut props = vec![(0.0f64, 0.0f64, 0.0f64); nl.num_nets()];
        dme_par::par_fill(&mut props, 64, props_of);
        for (net_idx, (cap, load, delay)) in props.into_iter().enumerate() {
            net_sink_cap[net_idx] = cap;
            net_load_ff[net_idx] = load;
            net_wire_delay[net_idx] = delay;
        }
    } else {
        for net_idx in 0..nl.num_nets() {
            let (cap, load, delay) = props_of(net_idx);
            net_sink_cap[net_idx] = cap;
            net_load_ff[net_idx] = load;
            net_wire_delay[net_idx] = delay;
        }
    }

    // --- forward propagation, one topological level at a time ---
    let levels = nl.topo_levels().expect("combinational cycle");
    dme_obs::counter_add("sta/levels_evaluated", levels.levels.len() as u64);
    let mut arrival = vec![0.0f64; n];
    let mut out_slew = vec![PI_SLEW_NS; n];
    let mut in_slew = vec![PI_SLEW_NS; n];
    let mut gate_delay = vec![0.0f64; n];
    let mut load = vec![0.0f64; n];

    {
        // Late (setup) pass: worst arrival and slew per gate. Each gate
        // only reads state of strictly lower levels, so all gates of one
        // level may run concurrently.
        let eval = |id: InstId, arrival: &[f64], out_slew: &[f64]| {
            late_gate(
                nl,
                &cache,
                doses,
                &net_load_ff,
                &net_wire_delay,
                arrival,
                out_slew,
                id,
            )
        };
        let mut results: Vec<(f64, f64, f64, f64, f64)> = Vec::new();
        for level in &levels.levels {
            if par && level.len() >= LEVEL_PAR_CUTOFF {
                results.clear();
                results.resize(level.len(), (0.0, 0.0, 0.0, 0.0, 0.0));
                dme_par::par_fill(&mut results, 16, |k| eval(level[k], &arrival, &out_slew));
                for (k, &(ld, d, arr, si, so)) in results.iter().enumerate() {
                    let i = level[k].0 as usize;
                    load[i] = ld;
                    gate_delay[i] = d;
                    arrival[i] = arr;
                    in_slew[i] = si;
                    out_slew[i] = so;
                }
            } else {
                for &id in level {
                    let (ld, d, arr, si, so) = eval(id, &arrival, &out_slew);
                    let i = id.0 as usize;
                    load[i] = ld;
                    gate_delay[i] = d;
                    arrival[i] = arr;
                    in_slew[i] = si;
                    out_slew[i] = so;
                }
            }
        }
    }

    // --- early (hold) propagation: best-case arrivals ---
    // Launch at clk→Q best delay; every gate contributes its min-of-rise/
    // fall delay; the earliest fanin pin wins. The hold check at an FF D
    // pin races this early arrival against the FF's hold requirement.
    let mut arrival_min = vec![0.0f64; n];
    let mut gate_delay_best = vec![0.0f64; n];
    {
        let early_gate = |id: InstId, arrival_min: &[f64]| -> (f64, f64) {
            let i = id.0 as usize;
            let inst = nl.instance(id);
            let out_load = net_load_ff[inst.output.0 as usize];
            let tables = cache.tables(inst.cell_idx, doses.dl_nm[i], doses.dw_nm[i]);
            if inst.is_sequential {
                let d = tables.delay_best(PI_SLEW_NS, out_load);
                return (d, d);
            }
            let mut arr = f64::INFINITY;
            for &net in &inst.inputs {
                let ni = net.0 as usize;
                match nl.net(net).driver {
                    Some(drv) => arr = arr.min(arrival_min[drv.0 as usize] + net_wire_delay[ni]),
                    None => arr = arr.min(net_wire_delay[ni]),
                }
            }
            if !arr.is_finite() {
                arr = 0.0;
            }
            let best = tables.delay_best(in_slew[i], out_load);
            (best, arr + best)
        };
        let mut results: Vec<(f64, f64)> = Vec::new();
        for level in &levels.levels {
            if par && level.len() >= LEVEL_PAR_CUTOFF {
                results.clear();
                results.resize(level.len(), (0.0, 0.0));
                dme_par::par_fill(&mut results, 16, |k| early_gate(level[k], &arrival_min));
                for (k, &(best, arr)) in results.iter().enumerate() {
                    let i = level[k].0 as usize;
                    gate_delay_best[i] = best;
                    arrival_min[i] = arr;
                }
            } else {
                for &id in level {
                    let (best, arr) = early_gate(id, &arrival_min);
                    let i = id.0 as usize;
                    gate_delay_best[i] = best;
                    arrival_min[i] = arr;
                }
            }
        }
    }
    let mut worst_hold = f64::INFINITY;
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        if inst.is_sequential {
            let data = inst.inputs[0];
            if let Some(drv) = nl.net(data).driver {
                let hold = lib.cell(inst.cell_idx).hold_ns(tech);
                let early = arrival_min[drv.0 as usize] + net_wire_delay[data.0 as usize];
                worst_hold = worst_hold.min(early - hold);
            }
        }
    }

    // --- endpoints and MCT ---
    // FF D pins capture with setup; primary outputs capture directly.
    let mct = mct_from_arrivals(lib, nl, &arrival, &net_wire_delay);

    // --- backward required-time pass at clock = MCT ---
    let mut required = vec![f64::INFINITY; n];
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        if inst.is_sequential {
            let data_net = inst.inputs[0];
            if let Some(drv) = nl.net(data_net).driver {
                let setup = lib.cell(inst.cell_idx).setup_ns(tech);
                let ni = data_net.0 as usize;
                let r = mct - setup - net_wire_delay[ni];
                let d = drv.0 as usize;
                required[d] = required[d].min(r);
            }
        }
    }
    for &po in &nl.primary_outputs {
        if let Some(drv) = nl.net(po).driver {
            let d = drv.0 as usize;
            required[d] = required[d].min(mct);
        }
    }
    for &id in levels.flatten().iter().rev() {
        let i = id.0 as usize;
        let inst = nl.instance(id);
        if inst.is_sequential {
            continue;
        }
        // Propagate requirement to combinational fanins.
        for &net in &inst.inputs {
            if let Some(drv) = nl.net(net).driver {
                if nl.instance(drv).is_sequential {
                    continue;
                }
                let ni = net.0 as usize;
                let r = required[i] - gate_delay[i] - net_wire_delay[ni];
                let d = drv.0 as usize;
                required[d] = required[d].min(r);
            }
        }
    }
    // Instances with no timed fanout keep required = +inf; clamp to MCT so
    // their slack is finite and large.
    let mut slack = vec![0.0f64; n];
    for i in 0..n {
        if !required[i].is_finite() {
            required[i] = mct;
        }
        slack[i] = required[i] - arrival[i];
    }

    // --- golden leakage ---
    let total_leakage_uw: f64 = (0..n)
        .map(|i| {
            lib.cell(nl.instances[i].cell_idx)
                .leakage_nw(tech, doses.dl_nm[i], doses.dw_nm[i])
        })
        .sum::<f64>()
        / 1000.0;

    TimingReport {
        arrival_ns: arrival,
        required_ns: required,
        slack_ns: slack,
        gate_delay_ns: gate_delay,
        input_slew_ns: in_slew,
        output_slew_ns: out_slew,
        load_ff: load,
        wire_delay_ns: net_wire_delay,
        arrival_min_ns: arrival_min,
        gate_delay_best_ns: gate_delay_best,
        worst_hold_slack_ns: worst_hold,
        mct_ns: mct,
        total_leakage_uw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    fn setup() -> (Library, dme_netlist::Design, Placement) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        (lib, d, p)
    }

    #[test]
    fn nominal_analysis_is_consistent() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        assert!(r.mct_ns > 0.0);
        assert!(r.total_leakage_uw > 0.0);
        // Worst slack is exactly zero at clock = MCT.
        let worst = r.slack_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(worst.abs() < 1e-9, "worst slack = {worst}");
        // No negative arrivals, no NaNs.
        for i in 0..d.netlist.num_instances() {
            assert!(r.arrival_ns[i] >= 0.0);
            assert!(r.slack_ns[i].is_finite());
        }
    }

    #[test]
    fn parallel_mode_dispatches_serially_on_one_thread() {
        // A width-1 pool (or forced-serial context) makes the parallel
        // level pass pure overhead: `run_tasks` inlines every task anyway.
        // `StaMode::Parallel` must therefore select the serial pass — and
        // still produce the identical (bitwise) report.
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        dme_par::set_force_serial(true);
        assert!(
            !StaMode::Parallel.parallel(),
            "Parallel mode must degrade to serial dispatch at 1 effective thread"
        );
        assert!(!StaMode::Auto.parallel());
        let rp = analyze_with_mode(&lib, &d.netlist, &p, &doses, StaMode::Parallel);
        let rs = analyze_with_mode(&lib, &d.netlist, &p, &doses, StaMode::Serial);
        dme_par::set_force_serial(false);
        assert_eq!(rs.mct_ns.to_bits(), rp.mct_ns.to_bits());
        for i in 0..d.netlist.num_instances() {
            assert_eq!(rs.arrival_ns[i].to_bits(), rp.arrival_ns[i].to_bits());
            assert_eq!(rs.slack_ns[i].to_bits(), rp.slack_ns[i].to_bits());
        }
    }

    #[test]
    fn arrivals_respect_edges() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        for id in d.netlist.inst_ids() {
            let inst = d.netlist.instance(id);
            if inst.is_sequential {
                continue;
            }
            for &net in &inst.inputs {
                if let Some(drv) = d.netlist.net(net).driver {
                    let lhs = r.arrival_ns[drv.0 as usize]
                        + r.wire_delay_ns[net.0 as usize]
                        + r.gate_delay_ns[id.0 as usize];
                    assert!(
                        lhs <= r.arrival_ns[id.0 as usize] + 1e-9,
                        "edge {drv}->{id} violates arrival"
                    );
                }
            }
        }
    }

    #[test]
    fn shorter_gates_speed_up_and_leak_more() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let nom = analyze(&lib, &d.netlist, &p, &GeometryAssignment::nominal(n));
        let fast = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::uniform(n, -10.0, 0.0),
        );
        assert!(fast.mct_ns < nom.mct_ns);
        assert!(fast.total_leakage_uw > 2.0 * nom.total_leakage_uw);
        let slow = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::uniform(n, 10.0, 0.0),
        );
        assert!(slow.mct_ns > nom.mct_ns);
        assert!(slow.total_leakage_uw < nom.total_leakage_uw);
    }

    #[test]
    fn wider_gates_speed_up_slightly() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let nom = analyze(&lib, &d.netlist, &p, &GeometryAssignment::nominal(n));
        let wide = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::uniform(n, 0.0, 10.0),
        );
        assert!(wide.mct_ns < nom.mct_ns);
        // Width effect is small relative to length effect (max ΔW = 10 nm
        // vs ≥ 200 nm widths — the paper's observation).
        let l_gain = nom.mct_ns
            - analyze(
                &lib,
                &d.netlist,
                &p,
                &GeometryAssignment::uniform(n, -10.0, 0.0),
            )
            .mct_ns;
        let w_gain = nom.mct_ns - wide.mct_ns;
        assert!(
            w_gain < 0.5 * l_gain,
            "w_gain = {w_gain}, l_gain = {l_gain}"
        );
    }

    #[test]
    fn hold_analysis_is_consistent() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let r = analyze(&lib, &d.netlist, &p, &doses);
        // Early arrivals never exceed late arrivals.
        for i in 0..d.netlist.num_instances() {
            assert!(
                r.arrival_min_ns[i] <= r.arrival_ns[i] + 1e-12,
                "early > late at instance {i}"
            );
            assert!(r.arrival_min_ns[i] >= 0.0);
        }
        assert!(r.worst_hold_slack_ns.is_finite());
        // Raising dose everywhere (faster gates) tightens hold slack.
        let fast = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::uniform(d.netlist.num_instances(), -10.0, 0.0),
        );
        assert!(fast.worst_hold_slack_ns <= r.worst_hold_slack_ns + 1e-12);
        // Lowering dose everywhere (slower gates) relaxes it.
        let slow = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::uniform(d.netlist.num_instances(), 10.0, 0.0),
        );
        assert!(slow.worst_hold_slack_ns >= r.worst_hold_slack_ns - 1e-12);
    }

    #[test]
    fn uniform_sweep_is_monotone() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let mut last_mct = f64::NEG_INFINITY;
        let mut last_leak = f64::INFINITY;
        for step in -5..=5 {
            let dl = -2.0 * step as f64; // dose +5% → ΔL = −10 nm
            let r = analyze(
                &lib,
                &d.netlist,
                &p,
                &GeometryAssignment::uniform(n, dl, 0.0),
            );
            if step > -5 {
                assert!(
                    r.mct_ns <= last_mct + 1e-9,
                    "MCT not decreasing at dose {step}"
                );
                assert!(
                    r.total_leakage_uw >= last_leak - 1e-9,
                    "leakage not increasing at dose {step}"
                );
            }
            last_mct = r.mct_ns;
            last_leak = r.total_leakage_uw;
        }
    }
}
