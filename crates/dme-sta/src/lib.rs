//! Static timing analysis and leakage-power rollup.
//!
//! This crate replaces the golden signoff tools of the paper (Synopsys
//! PrimeTime for timing, Cadence SoC Encounter for leakage). It provides:
//!
//! - [`analyze`]: block-based STA over a placed netlist — NLDM table
//!   interpolation through the characterized library variants, slew
//!   propagation, Elmore-style wire delays from placement HPWL, arrival /
//!   required / slack times, minimum cycle time (MCT) and total leakage;
//! - [`GeometryAssignment`]: the per-instance gate-length / gate-width
//!   deltas induced by a dose map (or a uniform dose sweep);
//! - [`paths`]: top-K critical-path enumeration (best-first deviation
//!   search), used by the dosePl heuristic, the Table VII criticality
//!   histogram and the Fig. 10 slack profiles;
//! - [`report`]: slack-profile and criticality-percentage helpers.
//!
//! # Example
//!
//! ```
//! use dme_netlist::{gen, profiles};
//! use dme_liberty::Library;
//! use dme_device::Technology;
//! use dme_sta::{analyze, GeometryAssignment};
//!
//! let lib = Library::standard(Technology::n65());
//! let design = gen::generate(&profiles::tiny(), &lib);
//! let placement = dme_placement::place(&design, &lib);
//! let doses = GeometryAssignment::nominal(design.netlist.num_instances());
//! let report = analyze(&lib, &design.netlist, &placement, &doses);
//! assert!(report.mct_ns > 0.0);
//! assert!(report.total_leakage_uw > 0.0);
//! ```

#![deny(missing_docs)]

mod delta;
mod engine;
pub mod incremental;
pub mod paths;
pub mod report;
pub mod sdf;
mod wire;

pub use delta::AssignmentDelta;
pub use engine::{analyze, analyze_with_mode, GeometryAssignment, StaMode, TimingReport};
pub use incremental::{IncrementalSta, RetimeStats, TopKStats};
pub use paths::{
    top_k_paths, worst_path_per_endpoint, worst_paths_per_endpoint_k, worst_paths_top_k,
    TimingPath,
};
pub use wire::WireModel;
