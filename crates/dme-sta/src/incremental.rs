//! Incremental late-corner re-timing for move/re-dose perturbations.
//!
//! [`IncrementalSta`] owns a mirror of the inputs it was last timed at
//! (cell positions and geometry deltas) plus the full late-pass state
//! (net loads, wire delays, arrivals, slews). Two entry points keep that
//! state current:
//!
//! - [`IncrementalSta::retime`] (pull): diffs the new
//!   placement/assignment against the mirror over **all** cells, then
//!   re-times the affected cone. O(n) per call regardless of how small
//!   the perturbation is; kept as the costed oracle path.
//! - [`IncrementalSta::retime_touched`] (push): the caller names the
//!   cells it perturbed (straight from its placement/assignment
//!   journals), so the diff is O(|touched|) and the whole call is
//!   O(cone). Scratch marks are epoch-stamped and reused across calls —
//!   no per-call O(n) allocation — and the MCT is answered from a
//!   lazily-maintained max structure over per-endpoint contributions
//!   instead of an O(n) endpoint scan.
//!
//! Every per-net and per-gate evaluation goes through the same functions
//! as the full [`crate::analyze`] pass ([`engine::net_props`] and
//! [`engine::late_gate`]), so after any sequence of `retime` /
//! `retime_touched` calls the arrival/slew state — and therefore the
//! reported MCT — is **bitwise identical** to a from-scratch analysis of
//! the current inputs. For the push path this relies on the caller's
//! contract: `touched` must cover every cell whose position or dose
//! changed since the last call.
//!
//! For trial-and-reject loops the engine also keeps an undo journal:
//! [`IncrementalSta::mark`] before a speculative retime,
//! [`IncrementalSta::undo_to`] to restore the pre-trial state bitwise by
//! replaying old slot values — O(cone) and **zero** gate evaluations,
//! where re-timing back to the old inputs would evaluate the cone a
//! second time.

use crate::engine::{self, GeometryAssignment};
use crate::wire::WireModel;
use dme_liberty::{Library, VariantCache};
use dme_netlist::{InstId, Netlist, TopoLevels};
use dme_placement::Placement;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work counters of an [`IncrementalSta`], for comparing incremental
/// against full-analysis cost in hardware-independent units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetimeStats {
    /// `retime`/`retime_touched` invocations (including the implicit
    /// full pass in `new`).
    pub retime_calls: u64,
    /// Gate evaluations performed (NLDM lookups — the dominant cost).
    /// A full analysis evaluates every instance once per pass.
    pub gates_retimed: u64,
    /// Net load/wire-delay recomputations performed.
    pub nets_updated: u64,
}

impl RetimeStats {
    /// Gate evaluations a sequence of full re-analyses would have spent
    /// on the same `retime_calls` (one evaluation per instance per call).
    pub fn full_equivalent_gates(&self, num_instances: usize) -> u64 {
        self.retime_calls * num_instances as u64
    }
}

/// Work counters of one [`IncrementalSta::worst_endpoints_top_k`]
/// selection, for comparing lazy top-K extraction against the full
/// endpoint sort it replaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Heap entries popped (selected live entries plus discards).
    pub endpoints_popped: u64,
    /// Popped entries dropped for good: contributions superseded by a
    /// later retime, or duplicate live entries left behind by undo
    /// replay. Discarding is the lazy structure's garbage collection.
    pub stale_discards: u64,
}

/// Journal position returned by [`IncrementalSta::mark`]; pass it back
/// to [`IncrementalSta::undo_to`] / [`IncrementalSta::commit`].
#[derive(Debug, Clone, Copy)]
pub struct StaMark(usize);

/// Which state slot a journal entry restores.
#[derive(Debug, Clone, Copy)]
enum Slot {
    NetLoad,
    NetDelay,
    Arrival,
    InSlew,
    OutSlew,
    GateDelay,
    Load,
    MirX,
    MirY,
    MirDl,
    MirDw,
    EpContrib,
}

#[derive(Debug, Clone, Copy)]
struct JEntry {
    slot: Slot,
    idx: u32,
    old: f64,
}

/// Total-order f64 wrapper so endpoint contributions can live in a
/// `BinaryHeap` (contributions are never NaN).
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Compressed sparse rows: `of(k)` lists the items filed under key `k`.
struct Csr {
    start: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    fn build(num_keys: usize, pairs: &[(u32, u32)]) -> Self {
        let mut start = vec![0u32; num_keys + 1];
        for &(k, _) in pairs {
            start[k as usize + 1] += 1;
        }
        for i in 0..num_keys {
            start[i + 1] += start[i];
        }
        let mut items = vec![0u32; pairs.len()];
        let mut cursor = start.clone();
        for &(k, v) in pairs {
            let c = &mut cursor[k as usize];
            items[*c as usize] = v;
            *c += 1;
        }
        Csr { start, items }
    }

    #[inline]
    fn of(&self, k: usize) -> &[u32] {
        &self.items[self.start[k] as usize..self.start[k + 1] as usize]
    }
}

/// Incrementally maintained late-corner timing state (see the module
/// docs for the contract).
pub struct IncrementalSta<'a> {
    lib: &'a Library,
    nl: &'a Netlist,
    wire: WireModel,
    cache: VariantCache<'a>,
    // Level decomposition, resolved once at construction (satellite of
    // the O(cone) work: no `topo_levels()`/`flatten()` in the hot path).
    levels: &'a TopoLevels,
    flat_order: Vec<InstId>,
    // Mirror of the inputs the state below was computed at.
    x_um: Vec<f64>,
    y_um: Vec<f64>,
    dl_nm: Vec<f64>,
    dw_nm: Vec<f64>,
    // Late-pass state, always consistent with the mirror.
    net_load_ff: Vec<f64>,
    net_wire_delay: Vec<f64>,
    arrival: Vec<f64>,
    in_slew: Vec<f64>,
    out_slew: Vec<f64>,
    gate_delay: Vec<f64>,
    load: Vec<f64>,
    // Epoch-stamped scratch, reused across calls (a slot is "set" for
    // the current call iff its stamp equals `epoch`).
    epoch: u64,
    net_mark: Vec<u64>,
    cone_mark: Vec<u64>,
    ep_mark: Vec<u64>,
    dirty_nets: Vec<u32>,
    dirty_gates: Vec<InstId>,
    dirty_eps: Vec<u32>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    // Incremental MCT: one contribution per timing endpoint (FF data
    // pins, then primary outputs), reverse indexes from the inputs a
    // contribution depends on, and a lazy max-heap over contributions
    // (stale entries are discarded at query time). Ties break toward
    // the lower endpoint index so top-K pops reproduce the stable
    // delay-descending endpoint sort of `worst_path_per_endpoint`.
    ep_drv: Vec<u32>,
    ep_net: Vec<u32>, // u32::MAX for primary-output endpoints
    ep_setup: Vec<f64>,
    ep_contrib: Vec<f64>,
    eps_of_inst: Csr,
    eps_of_net: Csr,
    mct_heap: BinaryHeap<(OrdF64, Reverse<u32>)>,
    // Epoch-stamped dedup marks for `worst_endpoints_top_k` (an endpoint
    // can carry several live heap entries after undo replay).
    topk_mark: Vec<u64>,
    topk_epoch: u64,
    // Undo journal (armed by trial-and-reject callers).
    journal: Vec<JEntry>,
    journal_armed: bool,
    stats: RetimeStats,
}

impl<'a> IncrementalSta<'a> {
    /// Builds the engine with a full late pass at the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle or the assignment
    /// length does not match the instance count.
    pub fn new(
        lib: &'a Library,
        nl: &'a Netlist,
        placement: &Placement,
        doses: &GeometryAssignment,
    ) -> Self {
        assert_eq!(
            doses.len(),
            nl.num_instances(),
            "assignment/netlist size mismatch"
        );
        let n = nl.num_instances();
        let levels = nl.topo_levels().expect("combinational cycle");
        let flat_order = levels.flatten();

        // Endpoint table: FF data pins (in instance order), then primary
        // outputs (in list order). Endpoints whose net has no driver
        // never contribute to the MCT and are simply not tabulated.
        let tech = lib.tech();
        let mut ep_drv = Vec::new();
        let mut ep_net = Vec::new();
        let mut ep_setup = Vec::new();
        let mut by_inst: Vec<(u32, u32)> = Vec::new();
        let mut by_net: Vec<(u32, u32)> = Vec::new();
        for id in nl.inst_ids() {
            let inst = nl.instance(id);
            if !inst.is_sequential {
                continue;
            }
            let data_net = inst.inputs[0];
            if let Some(drv) = nl.net(data_net).driver {
                let e = ep_drv.len() as u32;
                ep_drv.push(drv.0);
                ep_net.push(data_net.0);
                ep_setup.push(lib.cell(inst.cell_idx).setup_ns(tech));
                by_inst.push((drv.0, e));
                by_net.push((data_net.0, e));
            }
        }
        for &po in &nl.primary_outputs {
            if let Some(drv) = nl.net(po).driver {
                let e = ep_drv.len() as u32;
                ep_drv.push(drv.0);
                ep_net.push(u32::MAX);
                ep_setup.push(0.0);
                by_inst.push((drv.0, e));
            }
        }
        let num_eps = ep_drv.len();
        let eps_of_inst = Csr::build(n, &by_inst);
        let eps_of_net = Csr::build(nl.num_nets(), &by_net);

        let mut s = Self {
            lib,
            nl,
            wire: WireModel::for_tech(lib.tech()),
            cache: VariantCache::new(lib),
            levels,
            flat_order,
            x_um: placement.x_um.clone(),
            y_um: placement.y_um.clone(),
            dl_nm: doses.dl_nm.clone(),
            dw_nm: doses.dw_nm.clone(),
            net_load_ff: vec![0.0; nl.num_nets()],
            net_wire_delay: vec![0.0; nl.num_nets()],
            arrival: vec![0.0; n],
            in_slew: vec![engine::PI_SLEW_NS; n],
            out_slew: vec![engine::PI_SLEW_NS; n],
            gate_delay: vec![0.0; n],
            load: vec![0.0; n],
            epoch: 1,
            net_mark: vec![0; nl.num_nets()],
            cone_mark: vec![0; n],
            ep_mark: vec![0; num_eps],
            dirty_nets: Vec::new(),
            dirty_gates: Vec::new(),
            dirty_eps: Vec::new(),
            heap: BinaryHeap::new(),
            ep_drv,
            ep_net,
            ep_setup,
            ep_contrib: vec![0.0; num_eps],
            eps_of_inst,
            eps_of_net,
            mct_heap: BinaryHeap::new(),
            topk_mark: vec![0; num_eps],
            topk_epoch: 0,
            journal: Vec::new(),
            journal_armed: false,
            stats: RetimeStats::default(),
        };
        s.full_pass(placement, doses);
        s
    }

    fn full_pass(&mut self, placement: &Placement, doses: &GeometryAssignment) {
        self.stats.retime_calls += 1;
        for net_idx in 0..self.nl.num_nets() {
            let (_, load, delay) =
                engine::net_props(self.lib, self.nl, placement, doses, &self.wire, net_idx);
            self.net_load_ff[net_idx] = load;
            self.net_wire_delay[net_idx] = delay;
            self.stats.nets_updated += 1;
        }
        let order = std::mem::take(&mut self.flat_order);
        for &id in &order {
            self.retime_gate(id, doses);
        }
        self.flat_order = order;
        // (Re)build the endpoint contributions and the lazy max-heap.
        self.dirty_eps.clear();
        self.mct_heap.clear();
        for e in 0..self.ep_drv.len() {
            let v = self.ep_value(e);
            self.ep_contrib[e] = v;
            self.mct_heap.push((OrdF64(v), Reverse(e as u32)));
        }
    }

    /// The endpoint's contribution to the MCT, computed with exactly the
    /// expression `engine::mct_from_arrivals` uses.
    #[inline]
    fn ep_value(&self, e: usize) -> f64 {
        let a = self.arrival[self.ep_drv[e] as usize];
        let net = self.ep_net[e];
        if net == u32::MAX {
            a
        } else {
            a + self.net_wire_delay[net as usize] + self.ep_setup[e]
        }
    }

    #[inline]
    fn jpush(&mut self, slot: Slot, idx: u32, old: f64) {
        if self.journal_armed {
            self.journal.push(JEntry { slot, idx, old });
        }
    }

    #[inline]
    fn mark_net(&mut self, net: u32) {
        let k = net as usize;
        if self.net_mark[k] != self.epoch {
            self.net_mark[k] = self.epoch;
            self.dirty_nets.push(net);
        }
    }

    #[inline]
    fn mark_gate(&mut self, id: InstId) {
        let k = id.0 as usize;
        if self.cone_mark[k] != self.epoch {
            self.cone_mark[k] = self.epoch;
            self.dirty_gates.push(id);
        }
    }

    #[inline]
    fn mark_ep(&mut self, e: u32) {
        let k = e as usize;
        if self.ep_mark[k] != self.epoch {
            self.ep_mark[k] = self.epoch;
            self.dirty_eps.push(e);
        }
    }

    /// Evaluates one gate against the current state and writes its slots.
    /// Returns `true` when the externally visible outputs (arrival or
    /// output slew) changed.
    fn retime_gate(&mut self, id: InstId, doses: &GeometryAssignment) -> bool {
        let (ld, d, arr, si, so) = engine::late_gate(
            self.nl,
            &self.cache,
            doses,
            &self.net_load_ff,
            &self.net_wire_delay,
            &self.arrival,
            &self.out_slew,
            id,
        );
        self.stats.gates_retimed += 1;
        let i = id.0 as usize;
        let arr_changed = self.arrival[i].to_bits() != arr.to_bits();
        let changed = arr_changed || self.out_slew[i].to_bits() != so.to_bits();
        if self.journal_armed {
            self.journal.push(JEntry {
                slot: Slot::Load,
                idx: id.0,
                old: self.load[i],
            });
            self.journal.push(JEntry {
                slot: Slot::GateDelay,
                idx: id.0,
                old: self.gate_delay[i],
            });
            self.journal.push(JEntry {
                slot: Slot::Arrival,
                idx: id.0,
                old: self.arrival[i],
            });
            self.journal.push(JEntry {
                slot: Slot::InSlew,
                idx: id.0,
                old: self.in_slew[i],
            });
            self.journal.push(JEntry {
                slot: Slot::OutSlew,
                idx: id.0,
                old: self.out_slew[i],
            });
        }
        self.load[i] = ld;
        self.gate_delay[i] = d;
        self.arrival[i] = arr;
        self.in_slew[i] = si;
        self.out_slew[i] = so;
        if arr_changed {
            for t in 0..self.eps_of_inst.of(i).len() {
                let e = self.eps_of_inst.of(i)[t];
                self.mark_ep(e);
            }
        }
        changed
    }

    /// Opens a new retime epoch: dirty lists reset, stamps invalidated.
    fn begin(&mut self) {
        self.stats.retime_calls += 1;
        self.epoch += 1;
        self.dirty_nets.clear();
        self.dirty_gates.clear();
        self.dirty_eps.clear();
    }

    /// Diffs one cell against the mirror; on any change, updates the
    /// mirror and marks the incident nets and the cell itself dirty.
    fn seed_cell(&mut self, i: usize, placement: &Placement, doses: &GeometryAssignment) {
        let moved = self.x_um[i].to_bits() != placement.x_um[i].to_bits()
            || self.y_um[i].to_bits() != placement.y_um[i].to_bits();
        let redosed = self.dl_nm[i].to_bits() != doses.dl_nm[i].to_bits()
            || self.dw_nm[i].to_bits() != doses.dw_nm[i].to_bits();
        if !(moved || redosed) {
            return;
        }
        let idx = i as u32;
        self.jpush(Slot::MirX, idx, self.x_um[i]);
        self.jpush(Slot::MirY, idx, self.y_um[i]);
        self.jpush(Slot::MirDl, idx, self.dl_nm[i]);
        self.jpush(Slot::MirDw, idx, self.dw_nm[i]);
        self.x_um[i] = placement.x_um[i];
        self.y_um[i] = placement.y_um[i];
        self.dl_nm[i] = doses.dl_nm[i];
        self.dw_nm[i] = doses.dw_nm[i];
        let id = InstId(idx);
        let nl = self.nl;
        let inst = nl.instance(id);
        // A move shifts the HPWL of every incident net; a re-dose
        // changes the pin caps this cell presents on its input nets
        // and the delay tables of the cell itself.
        for &net in &inst.inputs {
            self.mark_net(net.0);
        }
        self.mark_net(inst.output.0);
        self.mark_gate(id);
    }

    /// Refreshes the dirty nets (ascending index, matching the pull
    /// path's evaluation order); their drivers re-time on a load change
    /// and their sinks on a wire-delay change.
    fn refresh_nets(&mut self, placement: &Placement, doses: &GeometryAssignment) {
        let _s = dme_obs::span("retime_nets");
        self.dirty_nets.sort_unstable();
        let nets = std::mem::take(&mut self.dirty_nets);
        for &net_u in &nets {
            let net_idx = net_u as usize;
            let (_, load, delay) =
                engine::net_props(self.lib, self.nl, placement, doses, &self.wire, net_idx);
            self.stats.nets_updated += 1;
            let load_changed = self.net_load_ff[net_idx].to_bits() != load.to_bits();
            let delay_changed = self.net_wire_delay[net_idx].to_bits() != delay.to_bits();
            if load_changed {
                self.jpush(Slot::NetLoad, net_u, self.net_load_ff[net_idx]);
            }
            if delay_changed {
                self.jpush(Slot::NetDelay, net_u, self.net_wire_delay[net_idx]);
            }
            self.net_load_ff[net_idx] = load;
            self.net_wire_delay[net_idx] = delay;
            if !(load_changed || delay_changed) {
                continue;
            }
            let nl = self.nl;
            let net = nl.net(dme_netlist::NetId(net_u));
            if load_changed {
                if let Some(drv) = net.driver {
                    self.mark_gate(drv);
                }
            }
            if delay_changed {
                for &(sink, _) in &net.sinks {
                    // A flop's data arrival is read directly off the
                    // driver at MCT query time; its own launch (clk→Q)
                    // does not depend on input timing.
                    if !nl.instance(sink).is_sequential {
                        self.mark_gate(sink);
                    }
                }
                // FF data pins on this net see a new wire delay.
                for t in 0..self.eps_of_net.of(net_idx).len() {
                    let e = self.eps_of_net.of(net_idx)[t];
                    self.mark_ep(e);
                }
            }
        }
        self.dirty_nets = nets;
    }

    /// Propagates the dirty seeds in depth order. Fanout always sits at
    /// strictly greater depth, so by the time a gate is popped every
    /// dirty fanin has settled and each gate is evaluated at most once.
    fn propagate(&mut self, doses: &GeometryAssignment) {
        let _s = dme_obs::span("retime_cone");
        let gates_before = self.stats.gates_retimed;
        self.heap.clear();
        let seeds = std::mem::take(&mut self.dirty_gates);
        let levels = self.levels;
        for &id in &seeds {
            self.heap.push(Reverse((levels.depth[id.0 as usize], id.0)));
        }
        self.dirty_gates = seeds;
        while let Some(Reverse((_, raw))) = self.heap.pop() {
            let id = InstId(raw);
            if !self.retime_gate(id, doses) {
                continue; // outputs bitwise unchanged: the cone ends here
            }
            let nl = self.nl;
            let out = nl.instance(id).output;
            for &(sink, _) in &nl.net(out).sinks {
                let s = sink.0 as usize;
                if !nl.instance(sink).is_sequential && self.cone_mark[s] != self.epoch {
                    self.cone_mark[s] = self.epoch;
                    let d = levels.depth[s];
                    self.heap.push(Reverse((d, sink.0)));
                }
            }
        }
        dme_obs::counter_add("sta/retime_calls", 1);
        dme_obs::histogram_record(
            "sta/retime_cone_gates",
            self.stats.gates_retimed - gates_before,
        );
    }

    /// Recomputes the contributions of endpoints whose inputs changed
    /// this epoch and feeds the lazy max-heap.
    fn refresh_endpoints(&mut self) {
        let eps = std::mem::take(&mut self.dirty_eps);
        for &e in &eps {
            let k = e as usize;
            let v = self.ep_value(k);
            if v.to_bits() != self.ep_contrib[k].to_bits() {
                self.jpush(Slot::EpContrib, e, self.ep_contrib[k]);
                self.ep_contrib[k] = v;
                self.mct_heap.push((OrdF64(v), Reverse(e)));
            }
        }
        self.dirty_eps = eps;
    }

    /// Current MCT from the lazy max-heap: pops stale entries until the
    /// top matches its endpoint's live contribution. Bitwise equal to
    /// the full endpoint scan (`max` over non-NaN values is
    /// order-insensitive), amortized O(1).
    fn mct_lazy(&mut self) -> f64 {
        while let Some(&(OrdF64(v), Reverse(e))) = self.mct_heap.peek() {
            if v.to_bits() == self.ep_contrib[e as usize].to_bits() {
                return 0.0f64.max(v);
            }
            self.mct_heap.pop();
        }
        0.0
    }

    /// Pops the `k` worst live endpoints from the lazy max-heap, most
    /// critical first, and returns their `(endpoint delay, driver)`
    /// pairs. Stale entries (superseded contributions) and duplicate
    /// live entries (undo-replay residue) are discarded for good;
    /// selected entries are pushed back, so the heap invariant — every
    /// live contribution keeps at least one entry — survives and
    /// [`IncrementalSta::retime_touched`]'s MCT query is unaffected.
    ///
    /// Ordering contract: pops come out by delay descending, ties by
    /// endpoint construction order (FF data pins in instance order,
    /// then primary outputs) — exactly the order of the stable sort in
    /// [`crate::worst_path_per_endpoint`], bitwise. Fewer than `k`
    /// pairs come back iff the design has fewer live endpoints.
    pub fn worst_endpoints_top_k(&mut self, k: usize) -> (Vec<(f64, InstId)>, TopKStats) {
        let cap = k.min(self.ep_drv.len());
        let mut stats = TopKStats::default();
        let mut selected: Vec<(OrdF64, Reverse<u32>)> = Vec::with_capacity(cap);
        let mut out: Vec<(f64, InstId)> = Vec::with_capacity(cap);
        self.topk_epoch += 1;
        while out.len() < k {
            let Some((OrdF64(v), Reverse(e))) = self.mct_heap.pop() else {
                break;
            };
            stats.endpoints_popped += 1;
            let ei = e as usize;
            if v.to_bits() != self.ep_contrib[ei].to_bits() || self.topk_mark[ei] == self.topk_epoch
            {
                stats.stale_discards += 1;
                continue;
            }
            self.topk_mark[ei] = self.topk_epoch;
            selected.push((OrdF64(v), Reverse(e)));
            out.push((v, InstId(self.ep_drv[ei])));
        }
        for entry in selected {
            self.mct_heap.push(entry);
        }
        (out, stats)
    }

    /// Re-times against a perturbed placement/assignment and returns the
    /// new MCT (ns). The perturbation is discovered by diffing **every**
    /// cell against the mirror — O(n) per call; prefer
    /// [`IncrementalSta::retime_touched`] when the caller knows what it
    /// changed. Cells outside the perturbation's fanout cone are not
    /// touched; the resulting state is bitwise identical to a full
    /// re-analysis.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match the instance count.
    pub fn retime(&mut self, placement: &Placement, doses: &GeometryAssignment) -> f64 {
        let n = self.nl.num_instances();
        assert_eq!(doses.len(), n, "assignment/netlist size mismatch");
        self.begin();
        dme_obs::counter_add("sta/retime_pull_calls", 1);
        {
            let _s = dme_obs::span("retime_diff");
            for i in 0..n {
                self.seed_cell(i, placement, doses);
            }
        }
        self.refresh_nets(placement, doses);
        self.propagate(doses);
        self.refresh_endpoints();
        let _s = dme_obs::span("retime_mct");
        self.mct_ns()
    }

    /// Push-based re-time: like [`IncrementalSta::retime`], but the diff
    /// runs only over `touched`, making the call O(cone) rather than
    /// O(n).
    ///
    /// Contract: `touched` must include every cell whose position or
    /// dose differs from the last re-timed state (duplicates and
    /// unchanged cells are fine — they are skipped by the bitwise diff).
    /// Under-reporting silently desynchronizes the engine.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match the instance count.
    pub fn retime_touched(
        &mut self,
        placement: &Placement,
        doses: &GeometryAssignment,
        touched: &[InstId],
    ) -> f64 {
        assert_eq!(
            doses.len(),
            self.nl.num_instances(),
            "assignment/netlist size mismatch"
        );
        self.begin();
        dme_obs::counter_add("sta/retime_push_calls", 1);
        {
            let _s = dme_obs::span("retime_diff");
            for &id in touched {
                self.seed_cell(id.0 as usize, placement, doses);
            }
        }
        self.refresh_nets(placement, doses);
        self.propagate(doses);
        self.refresh_endpoints();
        let _s = dme_obs::span("retime_mct");
        self.mct_lazy()
    }

    /// Arms (or disarms) the undo journal. Disarming clears it.
    pub fn set_journal(&mut self, armed: bool) {
        self.journal_armed = armed;
        if !armed {
            self.journal.clear();
        }
    }

    /// Current journal position, for a later [`IncrementalSta::undo_to`]
    /// or [`IncrementalSta::commit`].
    pub fn mark(&self) -> StaMark {
        StaMark(self.journal.len())
    }

    /// Accepts everything journaled since `mark` (drops the undo
    /// entries; the state itself is untouched).
    pub fn commit(&mut self, mark: StaMark) {
        self.journal.truncate(mark.0);
    }

    /// Restores the engine to its exact state at `mark` by replaying old
    /// slot values in reverse — O(entries since mark), zero gate
    /// evaluations. The mirror is restored too, so the caller must roll
    /// its placement/assignment back to the same point.
    pub fn undo_to(&mut self, mark: StaMark) {
        let _s = dme_obs::span("retime_undo_replay");
        let entries = (self.journal.len() - mark.0) as u64;
        while self.journal.len() > mark.0 {
            let e = self.journal.pop().expect("journal entry");
            let i = e.idx as usize;
            match e.slot {
                Slot::NetLoad => self.net_load_ff[i] = e.old,
                Slot::NetDelay => self.net_wire_delay[i] = e.old,
                Slot::Arrival => self.arrival[i] = e.old,
                Slot::InSlew => self.in_slew[i] = e.old,
                Slot::OutSlew => self.out_slew[i] = e.old,
                Slot::GateDelay => self.gate_delay[i] = e.old,
                Slot::Load => self.load[i] = e.old,
                Slot::MirX => self.x_um[i] = e.old,
                Slot::MirY => self.y_um[i] = e.old,
                Slot::MirDl => self.dl_nm[i] = e.old,
                Slot::MirDw => self.dw_nm[i] = e.old,
                Slot::EpContrib => {
                    self.ep_contrib[i] = e.old;
                    // The heap entry carrying the old value may have been
                    // popped as stale; re-push so the invariant "every
                    // live contribution has a heap entry" holds.
                    self.mct_heap.push((OrdF64(e.old), Reverse(e.idx)));
                }
            }
        }
        dme_obs::counter_add("sta/retime_undo_replays", 1);
        dme_obs::counter_add("sta/retime_undo_entries", entries);
    }

    /// MCT implied by the current state (worst endpoint delay, ns), via
    /// the full O(n) endpoint scan — the oracle the lazy structure is
    /// checked against.
    pub fn mct_ns(&self) -> f64 {
        engine::mct_from_arrivals(self.lib, self.nl, &self.arrival, &self.net_wire_delay)
    }

    /// Arrival time at each instance output, ns.
    pub fn arrival_ns(&self) -> &[f64] {
        &self.arrival
    }

    /// Output slew of each instance, ns.
    pub fn output_slew_ns(&self) -> &[f64] {
        &self.out_slew
    }

    /// Wire delay of each net, ns.
    pub fn wire_delay_ns(&self) -> &[f64] {
        &self.net_wire_delay
    }

    /// The netlist this engine was built over.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> RetimeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    fn setup() -> (Library, dme_netlist::Design, Placement) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        (lib, d, p)
    }

    fn assert_matches_full(
        inc: &IncrementalSta<'_>,
        lib: &Library,
        nl: &Netlist,
        p: &Placement,
        doses: &GeometryAssignment,
    ) {
        let full = analyze(lib, nl, p, doses);
        for i in 0..nl.num_instances() {
            assert_eq!(
                inc.arrival_ns()[i].to_bits(),
                full.arrival_ns[i].to_bits(),
                "arrival mismatch at instance {i}"
            );
            assert_eq!(
                inc.output_slew_ns()[i].to_bits(),
                full.output_slew_ns[i].to_bits(),
                "slew mismatch at instance {i}"
            );
        }
        assert_eq!(
            inc.mct_ns().to_bits(),
            full.mct_ns.to_bits(),
            "MCT mismatch"
        );
    }

    #[test]
    fn fresh_engine_matches_full_analysis() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
    }

    #[test]
    fn retime_after_move_matches_full_analysis() {
        let (lib, d, mut p) = setup();
        let n = d.netlist.num_instances();
        let doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        // Swap two cells and repack, as dosePl does.
        let (a, b) = (InstId(3), InstId(n as u32 / 2));
        p.swap_cells(a, b);
        let rows = [
            (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
            (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
        ];
        p.repack_rows(&lib, &d.netlist, &rows);
        inc.retime(&p, &doses);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
        // The cone must be a strict subset of the design.
        let s = inc.stats();
        assert!(s.gates_retimed < s.full_equivalent_gates(n), "{s:?}");
    }

    #[test]
    fn retime_after_redose_matches_full_analysis() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        doses.dl_nm[7] = -4.0;
        doses.dl_nm[n - 1] = 3.0;
        inc.retime(&p, &doses);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
    }

    #[test]
    fn noop_retime_touches_nothing() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let before = inc.stats();
        let mct0 = inc.mct_ns();
        let mct1 = inc.retime(&p, &doses);
        assert_eq!(mct0.to_bits(), mct1.to_bits());
        let after = inc.stats();
        assert_eq!(after.gates_retimed, before.gates_retimed);
        assert_eq!(after.nets_updated, before.nets_updated);
        assert_eq!(after.retime_calls, before.retime_calls + 1);
    }

    #[test]
    fn perturb_and_revert_restores_state_bitwise() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mct0 = inc.mct_ns();
        let arrival0 = inc.arrival_ns().to_vec();
        let mut p2 = p.clone();
        p2.swap_cells(InstId(1), InstId(9));
        inc.retime(&p2, &doses);
        inc.retime(&p, &doses);
        assert_eq!(inc.mct_ns().to_bits(), mct0.to_bits());
        for (i, a0) in arrival0.iter().enumerate() {
            assert_eq!(inc.arrival_ns()[i].to_bits(), a0.to_bits());
        }
    }

    #[test]
    fn push_retime_matches_pull_and_full() {
        let (lib, d, mut p) = setup();
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut push = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mut pull = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        // A move (swap + repack) followed by a re-dose, pushed from the
        // placement journal exactly as the Delta engine does.
        let mut pd = dme_placement::PlacementDelta::default();
        let (a, b) = (InstId(5), InstId(n as u32 / 3));
        p.swap_cells_tracked(a, b, &mut pd);
        let rows = [
            (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
            (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
        ];
        p.repack_rows_tracked(&lib, &d.netlist, &rows, &mut pd);
        doses.dl_nm[a.0 as usize] = -2.0;
        let mut touched = pd.touched_since(0);
        touched.push(a);
        let m_push = push.retime_touched(&p, &doses, &touched);
        let m_pull = pull.retime(&p, &doses);
        assert_eq!(m_push.to_bits(), m_pull.to_bits(), "push/pull MCT");
        assert_matches_full(&push, &lib, &d.netlist, &p, &doses);
        for i in 0..n {
            assert_eq!(
                push.arrival_ns()[i].to_bits(),
                pull.arrival_ns()[i].to_bits()
            );
            assert_eq!(
                push.output_slew_ns()[i].to_bits(),
                pull.output_slew_ns()[i].to_bits()
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "12k-cell schedule: use --release")]
    fn push_matches_pull_and_full_at_bench_scale() {
        // The same push-vs-pull-vs-full contract on the 12k-cell
        // wide/shallow design the perf benches use, over a longer
        // deterministic perturbation schedule — cones here are
        // hundreds of gates, so stale-epoch and lazy-MCT bookkeeping
        // bugs that tiny designs mask have room to surface.
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::scaling(12_000, 7), &lib);
        let mut p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut push = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mut pull = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let mut next = |m: usize| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % m as u64) as usize
        };
        let mut pd = dme_placement::PlacementDelta::default();
        for step in 0..24 {
            let mark = pd.mark();
            let (a, b) = (InstId(next(n) as u32), InstId(next(n) as u32));
            let mut touched = Vec::new();
            if a != b {
                p.swap_cells_tracked(a, b, &mut pd);
                let rows = [
                    (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                    (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
                ];
                p.repack_rows_tracked(&lib, &d.netlist, &rows, &mut pd);
                touched = pd.touched_since(mark);
            }
            let redosed = next(n);
            doses.dl_nm[redosed] = [-4.0, -2.0, 0.0, 3.0][step % 4];
            touched.push(InstId(redosed as u32));
            let m_push = push.retime_touched(&p, &doses, &touched);
            let m_pull = pull.retime(&p, &doses);
            assert_eq!(m_push.to_bits(), m_pull.to_bits(), "MCT at step {step}");
            for i in 0..n {
                assert_eq!(
                    push.arrival_ns()[i].to_bits(),
                    pull.arrival_ns()[i].to_bits(),
                    "arrival at step {step}, instance {i}"
                );
            }
            // Full-analysis cross-check every few steps (it is the
            // expensive oracle at this scale).
            if step % 6 == 5 {
                assert_matches_full(&push, &lib, &d.netlist, &p, &doses);
            }
        }
    }

    #[test]
    fn lazy_mct_matches_scan_after_many_retimes() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        for step in 0..20 {
            let i = (step * 7) % n;
            doses.dl_nm[i] = -4.0 + (step % 9) as f64;
            let lazy = inc.retime_touched(&p, &doses, &[InstId(i as u32)]);
            assert_eq!(lazy.to_bits(), inc.mct_ns().to_bits(), "step {step}");
        }
    }

    #[test]
    fn undo_restores_state_bitwise_with_zero_gate_evals() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        inc.set_journal(true);
        let mct0 = inc.mct_ns();
        let arr0 = inc.arrival_ns().to_vec();
        let slew0 = inc.output_slew_ns().to_vec();

        let mark = inc.mark();
        let mut p2 = p.clone();
        p2.swap_cells(InstId(2), InstId(11));
        doses.dw_nm[4] = 3.0;
        inc.retime_touched(&p2, &doses, &[InstId(2), InstId(11), InstId(4)]);
        let evals_before_undo = inc.stats().gates_retimed;
        doses.dw_nm[4] = 0.0;
        inc.undo_to(mark);
        assert_eq!(
            inc.stats().gates_retimed,
            evals_before_undo,
            "undo must not evaluate"
        );
        assert_eq!(inc.mct_ns().to_bits(), mct0.to_bits());
        for i in 0..n {
            assert_eq!(inc.arrival_ns()[i].to_bits(), arr0[i].to_bits());
            assert_eq!(inc.output_slew_ns()[i].to_bits(), slew0[i].to_bits());
        }
        // The lazy MCT must also have been restored (heap invariant).
        let lazy = inc.retime_touched(&p, &doses, &[]);
        assert_eq!(lazy.to_bits(), mct0.to_bits());
        // After undo, the engine keeps working: perturb again and check.
        doses.dl_nm[8] = 2.0;
        inc.retime_touched(&p, &doses, &[InstId(8)]);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
    }
}
