//! Incremental late-corner re-timing for move/re-dose perturbations.
//!
//! [`IncrementalSta`] owns a mirror of the inputs it was last timed at
//! (cell positions and geometry deltas) plus the full late-pass state
//! (net loads, wire delays, arrivals, slews). [`IncrementalSta::retime`]
//! diffs the new placement/assignment against the mirror, recomputes only
//! the incident nets of the cells that actually moved or changed dose,
//! and then propagates arrival/slew changes through the fanout cone in
//! topological-depth order, stopping at gates whose outputs are bitwise
//! unchanged.
//!
//! Every per-net and per-gate evaluation goes through the same functions
//! as the full [`crate::analyze`] pass ([`engine::net_props`] and
//! [`engine::late_gate`]), so after any sequence of `retime` calls the
//! arrival/slew state — and therefore the reported MCT — is **bitwise
//! identical** to a from-scratch analysis of the current inputs. The
//! savings are proportional to the fraction of the design outside the
//! perturbation's fanout cone, which for local cell swaps is nearly all
//! of it.

use crate::engine::{self, GeometryAssignment};
use crate::wire::WireModel;
use dme_liberty::{Library, VariantCache};
use dme_netlist::{InstId, Netlist};
use dme_placement::Placement;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work counters of an [`IncrementalSta`], for comparing incremental
/// against full-analysis cost in hardware-independent units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetimeStats {
    /// `retime` invocations (including the implicit full pass in `new`).
    pub retime_calls: u64,
    /// Gate evaluations performed (NLDM lookups — the dominant cost).
    /// A full analysis evaluates every instance once per pass.
    pub gates_retimed: u64,
    /// Net load/wire-delay recomputations performed.
    pub nets_updated: u64,
}

impl RetimeStats {
    /// Gate evaluations a sequence of full re-analyses would have spent
    /// on the same `retime_calls` (one evaluation per instance per call).
    pub fn full_equivalent_gates(&self, num_instances: usize) -> u64 {
        self.retime_calls * num_instances as u64
    }
}

/// Incrementally maintained late-corner timing state (see the module
/// docs for the contract).
pub struct IncrementalSta<'a> {
    lib: &'a Library,
    nl: &'a Netlist,
    wire: WireModel,
    cache: VariantCache<'a>,
    // Mirror of the inputs the state below was computed at.
    x_um: Vec<f64>,
    y_um: Vec<f64>,
    dl_nm: Vec<f64>,
    dw_nm: Vec<f64>,
    // Late-pass state, always consistent with the mirror.
    net_load_ff: Vec<f64>,
    net_wire_delay: Vec<f64>,
    arrival: Vec<f64>,
    in_slew: Vec<f64>,
    out_slew: Vec<f64>,
    gate_delay: Vec<f64>,
    load: Vec<f64>,
    stats: RetimeStats,
}

impl<'a> IncrementalSta<'a> {
    /// Builds the engine with a full late pass at the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle or the assignment
    /// length does not match the instance count.
    pub fn new(
        lib: &'a Library,
        nl: &'a Netlist,
        placement: &Placement,
        doses: &GeometryAssignment,
    ) -> Self {
        assert_eq!(
            doses.len(),
            nl.num_instances(),
            "assignment/netlist size mismatch"
        );
        let n = nl.num_instances();
        let mut s = Self {
            lib,
            nl,
            wire: WireModel::for_tech(lib.tech()),
            cache: VariantCache::new(lib),
            x_um: placement.x_um.clone(),
            y_um: placement.y_um.clone(),
            dl_nm: doses.dl_nm.clone(),
            dw_nm: doses.dw_nm.clone(),
            net_load_ff: vec![0.0; nl.num_nets()],
            net_wire_delay: vec![0.0; nl.num_nets()],
            arrival: vec![0.0; n],
            in_slew: vec![engine::PI_SLEW_NS; n],
            out_slew: vec![engine::PI_SLEW_NS; n],
            gate_delay: vec![0.0; n],
            load: vec![0.0; n],
            stats: RetimeStats::default(),
        };
        s.full_pass(placement, doses);
        s
    }

    fn full_pass(&mut self, placement: &Placement, doses: &GeometryAssignment) {
        self.stats.retime_calls += 1;
        for net_idx in 0..self.nl.num_nets() {
            let (_, load, delay) =
                engine::net_props(self.lib, self.nl, placement, doses, &self.wire, net_idx);
            self.net_load_ff[net_idx] = load;
            self.net_wire_delay[net_idx] = delay;
            self.stats.nets_updated += 1;
        }
        let levels = self.nl.topo_levels().expect("combinational cycle");
        for &id in &levels.flatten() {
            self.retime_gate(id, doses);
        }
    }

    /// Evaluates one gate against the current state and writes its slots.
    /// Returns `true` when the externally visible outputs (arrival or
    /// output slew) changed.
    fn retime_gate(&mut self, id: InstId, doses: &GeometryAssignment) -> bool {
        let (ld, d, arr, si, so) = engine::late_gate(
            self.nl,
            &self.cache,
            doses,
            &self.net_load_ff,
            &self.net_wire_delay,
            &self.arrival,
            &self.out_slew,
            id,
        );
        self.stats.gates_retimed += 1;
        let i = id.0 as usize;
        let changed = self.arrival[i].to_bits() != arr.to_bits()
            || self.out_slew[i].to_bits() != so.to_bits();
        self.load[i] = ld;
        self.gate_delay[i] = d;
        self.arrival[i] = arr;
        self.in_slew[i] = si;
        self.out_slew[i] = so;
        changed
    }

    /// Re-times against a perturbed placement/assignment and returns the
    /// new MCT (ns). Cells outside the perturbation's fanout cone are not
    /// touched; the resulting state is bitwise identical to a full
    /// re-analysis.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match the instance count.
    pub fn retime(&mut self, placement: &Placement, doses: &GeometryAssignment) -> f64 {
        let n = self.nl.num_instances();
        assert_eq!(doses.len(), n, "assignment/netlist size mismatch");
        self.stats.retime_calls += 1;
        let levels = self.nl.topo_levels().expect("combinational cycle");

        // Diff the mirror to find perturbed cells and their incident nets.
        let mut net_affected = vec![false; self.nl.num_nets()];
        let mut dirty: Vec<InstId> = Vec::new();
        let mut in_cone = vec![false; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let moved = self.x_um[i].to_bits() != placement.x_um[i].to_bits()
                || self.y_um[i].to_bits() != placement.y_um[i].to_bits();
            let redosed = self.dl_nm[i].to_bits() != doses.dl_nm[i].to_bits()
                || self.dw_nm[i].to_bits() != doses.dw_nm[i].to_bits();
            if !(moved || redosed) {
                continue;
            }
            self.x_um[i] = placement.x_um[i];
            self.y_um[i] = placement.y_um[i];
            self.dl_nm[i] = doses.dl_nm[i];
            self.dw_nm[i] = doses.dw_nm[i];
            let id = InstId(i as u32);
            let inst = self.nl.instance(id);
            // A move shifts the HPWL of every incident net; a re-dose
            // changes the pin caps this cell presents on its input nets
            // and the delay tables of the cell itself.
            for &net in &inst.inputs {
                net_affected[net.0 as usize] = true;
            }
            net_affected[inst.output.0 as usize] = true;
            if !in_cone[i] {
                in_cone[i] = true;
                dirty.push(id);
            }
        }

        // Refresh affected nets; their drivers re-time on a load change
        // and their sinks on a wire-delay (or load) change.
        for (net_idx, _) in net_affected.iter().enumerate().filter(|(_, &a)| a) {
            let (_, load, delay) =
                engine::net_props(self.lib, self.nl, placement, doses, &self.wire, net_idx);
            self.stats.nets_updated += 1;
            let load_changed = self.net_load_ff[net_idx].to_bits() != load.to_bits();
            let delay_changed = self.net_wire_delay[net_idx].to_bits() != delay.to_bits();
            self.net_load_ff[net_idx] = load;
            self.net_wire_delay[net_idx] = delay;
            if !(load_changed || delay_changed) {
                continue;
            }
            let net = self.nl.net(dme_netlist::NetId(net_idx as u32));
            if load_changed {
                if let Some(drv) = net.driver {
                    if !in_cone[drv.0 as usize] {
                        in_cone[drv.0 as usize] = true;
                        dirty.push(drv);
                    }
                }
            }
            if delay_changed {
                for &(sink, _) in &net.sinks {
                    let s = sink.0 as usize;
                    // A flop's data arrival is read directly off the
                    // driver at MCT query time; its own launch (clk→Q)
                    // does not depend on input timing.
                    if !self.nl.instance(sink).is_sequential && !in_cone[s] {
                        in_cone[s] = true;
                        dirty.push(sink);
                    }
                }
            }
        }

        // Propagate in depth order. Fanout always sits at strictly greater
        // depth, so by the time a gate is popped every dirty fanin has
        // settled and each gate is evaluated at most once.
        let gates_before = self.stats.gates_retimed;
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = dirty
            .iter()
            .map(|&id| Reverse((levels.depth[id.0 as usize], id.0)))
            .collect();
        while let Some(Reverse((_, raw))) = heap.pop() {
            let id = InstId(raw);
            if !self.retime_gate(id, doses) {
                continue; // outputs bitwise unchanged: the cone ends here
            }
            let out = self.nl.instance(id).output;
            for &(sink, _) in &self.nl.net(out).sinks {
                let s = sink.0 as usize;
                if !self.nl.instance(sink).is_sequential && !in_cone[s] {
                    in_cone[s] = true;
                    heap.push(Reverse((levels.depth[s], sink.0)));
                }
            }
        }
        dme_obs::counter_add("sta/retime_calls", 1);
        dme_obs::histogram_record(
            "sta/retime_cone_gates",
            self.stats.gates_retimed - gates_before,
        );

        self.mct_ns()
    }

    /// MCT implied by the current state (worst endpoint delay, ns).
    pub fn mct_ns(&self) -> f64 {
        engine::mct_from_arrivals(self.lib, self.nl, &self.arrival, &self.net_wire_delay)
    }

    /// Arrival time at each instance output, ns.
    pub fn arrival_ns(&self) -> &[f64] {
        &self.arrival
    }

    /// Output slew of each instance, ns.
    pub fn output_slew_ns(&self) -> &[f64] {
        &self.out_slew
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> RetimeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    fn setup() -> (Library, dme_netlist::Design, Placement) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        (lib, d, p)
    }

    fn assert_matches_full(
        inc: &IncrementalSta<'_>,
        lib: &Library,
        nl: &Netlist,
        p: &Placement,
        doses: &GeometryAssignment,
    ) {
        let full = analyze(lib, nl, p, doses);
        for i in 0..nl.num_instances() {
            assert_eq!(
                inc.arrival_ns()[i].to_bits(),
                full.arrival_ns[i].to_bits(),
                "arrival mismatch at instance {i}"
            );
            assert_eq!(
                inc.output_slew_ns()[i].to_bits(),
                full.output_slew_ns[i].to_bits(),
                "slew mismatch at instance {i}"
            );
        }
        assert_eq!(
            inc.mct_ns().to_bits(),
            full.mct_ns.to_bits(),
            "MCT mismatch"
        );
    }

    #[test]
    fn fresh_engine_matches_full_analysis() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
    }

    #[test]
    fn retime_after_move_matches_full_analysis() {
        let (lib, d, mut p) = setup();
        let n = d.netlist.num_instances();
        let doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        // Swap two cells and repack, as dosePl does.
        let (a, b) = (InstId(3), InstId(n as u32 / 2));
        p.swap_cells(a, b);
        let rows = [
            (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
            (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
        ];
        p.repack_rows(&lib, &d.netlist, &rows);
        inc.retime(&p, &doses);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
        // The cone must be a strict subset of the design.
        let s = inc.stats();
        assert!(s.gates_retimed < s.full_equivalent_gates(n), "{s:?}");
    }

    #[test]
    fn retime_after_redose_matches_full_analysis() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        doses.dl_nm[7] = -4.0;
        doses.dl_nm[n - 1] = 3.0;
        inc.retime(&p, &doses);
        assert_matches_full(&inc, &lib, &d.netlist, &p, &doses);
    }

    #[test]
    fn noop_retime_touches_nothing() {
        let (lib, d, p) = setup();
        let doses = GeometryAssignment::nominal(d.netlist.num_instances());
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let before = inc.stats();
        let mct0 = inc.mct_ns();
        let mct1 = inc.retime(&p, &doses);
        assert_eq!(mct0.to_bits(), mct1.to_bits());
        let after = inc.stats();
        assert_eq!(after.gates_retimed, before.gates_retimed);
        assert_eq!(after.nets_updated, before.nets_updated);
        assert_eq!(after.retime_calls, before.retime_calls + 1);
    }

    #[test]
    fn perturb_and_revert_restores_state_bitwise() {
        let (lib, d, p) = setup();
        let n = d.netlist.num_instances();
        let doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mct0 = inc.mct_ns();
        let arrival0 = inc.arrival_ns().to_vec();
        let mut p2 = p.clone();
        p2.swap_cells(InstId(1), InstId(9));
        inc.retime(&p2, &doses);
        inc.retime(&p, &doses);
        assert_eq!(inc.mct_ns().to_bits(), mct0.to_bits());
        for (i, a0) in arrival0.iter().enumerate() {
            assert_eq!(inc.arrival_ns()[i].to_bits(), a0.to_bits());
        }
    }
}
