//! Geometry-delta journal for O(Δ) undo of assignment perturbations.
//!
//! The dosePl swap loop re-derives the [`GeometryAssignment`] entries of
//! the cells a candidate perturbation moved (their dose, hence ΔL/ΔW,
//! depends only on their own position), times the result, and usually
//! rejects it. Rebuilding the assignment from scratch per candidate
//! costs O(n); an [`AssignmentDelta`] instead records the *previous*
//! ΔL/ΔW of only the instances actually rewritten (bitwise change
//! detection, so rewriting an entry with the same value records
//! nothing). Undo replays the journal in reverse, restoring the exact
//! prior bits.
//!
//! Marks ([`AssignmentDelta::mark`]) delimit nested scopes: a candidate
//! undoes back to its own mark, while a round-level rollback undoes the
//! whole journal, replacing the per-round full rebuild.

use crate::GeometryAssignment;

/// One journal entry: an instance's ΔL/ΔW before a tracked write.
#[derive(Debug, Clone, Copy)]
struct DeltaEntry {
    inst: u32,
    old_dl: f64,
    old_dw: f64,
}

/// An append-only journal of assignment overwrites (see module docs).
#[derive(Debug, Clone, Default)]
pub struct AssignmentDelta {
    entries: Vec<DeltaEntry>,
}

impl AssignmentDelta {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current journal position; pass to [`AssignmentDelta::undo_to`]
    /// to scope a perturbation.
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes `(dl_nm, dw_nm)` for instance `inst`, journaling the prior
    /// values iff they differ bitwise.
    pub fn set(
        &mut self,
        assignment: &mut GeometryAssignment,
        inst: usize,
        dl_nm: f64,
        dw_nm: f64,
    ) {
        let (old_dl, old_dw) = (assignment.dl_nm[inst], assignment.dw_nm[inst]);
        if old_dl.to_bits() == dl_nm.to_bits() && old_dw.to_bits() == dw_nm.to_bits() {
            return;
        }
        self.entries.push(DeltaEntry {
            inst: inst as u32,
            old_dl,
            old_dw,
        });
        assignment.dl_nm[inst] = dl_nm;
        assignment.dw_nm[inst] = dw_nm;
    }

    /// Undoes every write recorded after `mark`, restoring the exact
    /// prior bits, and truncates the journal back to `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is beyond the current journal length.
    pub fn undo_to(&mut self, assignment: &mut GeometryAssignment, mark: usize) {
        assert!(mark <= self.entries.len(), "mark beyond journal length");
        while self.entries.len() > mark {
            let e = self.entries.pop().expect("len > mark");
            assignment.dl_nm[e.inst as usize] = e.old_dl;
            assignment.dw_nm[e.inst as usize] = e.old_dw;
        }
    }

    /// Undoes the whole journal (round-level rollback).
    pub fn undo_all(&mut self, assignment: &mut GeometryAssignment) {
        self.undo_to(assignment, 0);
    }

    /// Number of recorded writes since `mark` (not deduped).
    pub fn writes_since(&self, mark: usize) -> usize {
        self.entries.len().saturating_sub(mark)
    }

    /// Forgets all entries without undoing them (accept the writes and
    /// start a new scope).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_journals_and_undo_restores_bitwise() {
        let mut a = GeometryAssignment::nominal(4);
        let mut j = AssignmentDelta::new();

        j.set(&mut a, 1, -1.5, 0.25);
        let m = j.mark();
        // Same-bits rewrite records nothing.
        j.set(&mut a, 1, -1.5, 0.25);
        assert_eq!(j.writes_since(m), 0);
        j.set(&mut a, 2, 3.0, -0.5);
        j.set(&mut a, 1, 0.75, 0.25);
        assert_eq!(j.writes_since(m), 2);

        j.undo_to(&mut a, m);
        assert_eq!(a.dl_nm[1].to_bits(), (-1.5f64).to_bits());
        assert_eq!(a.dw_nm[1].to_bits(), 0.25f64.to_bits());
        assert_eq!(a.dl_nm[2].to_bits(), 0.0f64.to_bits());

        j.undo_all(&mut a);
        let nominal = GeometryAssignment::nominal(4);
        assert_eq!(a, nominal);
        assert!(j.is_empty());
    }
}
