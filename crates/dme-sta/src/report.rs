//! Reporting helpers: slack profiles (Fig. 10) and criticality
//! percentages (Table VII).

use crate::paths::TimingPath;

/// One bin of a slack profile histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackBin {
    /// Inclusive lower slack edge, ns.
    pub lo_ns: f64,
    /// Exclusive upper slack edge, ns.
    pub hi_ns: f64,
    /// Number of paths whose slack falls in the bin.
    pub count: usize,
}

/// Histogram of path slacks over `bins` equal-width bins spanning
/// `[0, max_slack]` — the Fig. 10 "slack profile" of a design. Paths with
/// tiny negative numerical slack land in the first bin.
pub fn slack_profile(paths: &[TimingPath], bins: usize) -> Vec<SlackBin> {
    assert!(bins > 0, "need at least one bin");
    let max_slack = paths
        .iter()
        .map(|p| p.slack_ns)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let width = max_slack / bins as f64;
    let mut out: Vec<SlackBin> = (0..bins)
        .map(|i| SlackBin {
            lo_ns: i as f64 * width,
            hi_ns: (i as f64 + 1.0) * width,
            count: 0,
        })
        .collect();
    for p in paths {
        let idx = ((p.slack_ns / width).floor().max(0.0) as usize).min(bins - 1);
        out[idx].count += 1;
    }
    out
}

/// Percentages of paths whose delay falls within given fractions of the
/// MCT — the paper's Table VII. `thresholds` are fractions (e.g. 0.95
/// means "delay within 95–100% of MCT"); the result is a percentage per
/// threshold, computed over the supplied path set.
pub fn criticality_percentages(paths: &[TimingPath], mct_ns: f64, thresholds: &[f64]) -> Vec<f64> {
    if paths.is_empty() {
        return thresholds.iter().map(|_| 0.0).collect();
    }
    thresholds
        .iter()
        .map(|&t| {
            let c = paths.iter().filter(|p| p.delay_ns >= t * mct_ns).count();
            100.0 * c as f64 / paths.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_netlist::InstId;

    fn path(delay: f64, slack: f64) -> TimingPath {
        TimingPath {
            instances: vec![InstId(0)],
            delay_ns: delay,
            slack_ns: slack,
        }
    }

    #[test]
    fn profile_counts_every_path() {
        let paths: Vec<TimingPath> = (0..100).map(|i| path(1.0, i as f64 * 0.01)).collect();
        let prof = slack_profile(&paths, 10);
        assert_eq!(prof.iter().map(|b| b.count).sum::<usize>(), 100);
        // Uniform slacks → roughly uniform bins.
        for b in &prof {
            assert!(b.count >= 5 && b.count <= 15, "bin count {}", b.count);
        }
    }

    #[test]
    fn profile_handles_negative_and_zero_slack() {
        let paths = vec![path(1.0, -1e-15), path(1.0, 0.0), path(1.0, 0.5)];
        let prof = slack_profile(&paths, 5);
        assert_eq!(prof.iter().map(|b| b.count).sum::<usize>(), 3);
        assert_eq!(prof[0].count, 2);
    }

    #[test]
    fn criticality_is_monotone_in_threshold() {
        let paths: Vec<TimingPath> = (0..1000)
            .map(|i| path(1.0 - i as f64 * 0.0005, 0.0))
            .collect();
        let pct = criticality_percentages(&paths, 1.0, &[0.95, 0.90, 0.80]);
        assert!(pct[0] <= pct[1] && pct[1] <= pct[2]);
        assert!((pct[0] - 10.1).abs() < 1.0, "pct95 = {}", pct[0]);
    }

    #[test]
    fn empty_paths_give_zero_percentages() {
        let pct = criticality_percentages(&[], 1.0, &[0.9]);
        assert_eq!(pct, vec![0.0]);
    }
}
