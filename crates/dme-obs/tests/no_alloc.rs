//! Verifies the disabled-tracing cost contract: with tracing off, a
//! span is a branch plus an inert guard — **zero heap allocations** —
//! and the [`dme_obs::TrackingAllocator`] hook is branch-only (one
//! relaxed load, no tally movement).
//!
//! Lives in its own integration binary so the counting allocator and
//! single-threaded accounting don't interfere with other tests. The
//! global allocator here is the same wrapper `dmeopt` installs,
//! stacked on a raw allocation counter, so the zero-alloc assertion
//! also covers the profiling hook itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: dme_obs::TrackingAllocator<CountingAlloc> =
    dme_obs::TrackingAllocator(CountingAlloc);

#[test]
fn disabled_tracing_does_not_allocate() {
    // Under DME_TRACE=1 (e.g. the CI trace job) tracing is genuinely
    // on, so the contract under test does not apply — skip. The same
    // goes for an armed live stream.
    if std::env::var("DME_TRACE").is_ok()
        || std::env::var("DME_TRACE_JSON").is_ok()
        || std::env::var("DME_STREAM").is_ok()
        || std::env::var("DME_SNAPSHOT_MS").is_ok()
    {
        eprintln!("skipping: DME_TRACE/DME_STREAM set, tracing is enabled");
        return;
    }

    // Warm the lazy env-init and the test harness's own buffers.
    assert!(!dme_obs::enabled());
    assert!(!dme_obs::stream_armed());

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        let _s = dme_obs::span("hot");
        let _t = dme_obs::span("nested");
        dme_obs::counter_add("hot/counter", 1);
        dme_obs::histogram_record("hot/hist", i);
        dme_obs::record("hot/rec", &[("i", i as f64)]);
        // Profiling hooks on the disabled path: depth probe, the
        // thread tally read and the stream-armed probe are alloc-free
        // too.
        assert_eq!(dme_obs::depth(), 0);
        std::hint::black_box(dme_obs::thread_alloc_totals());
        assert!(!std::hint::black_box(dme_obs::stream_armed()));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled tracing must not heap-allocate");
}

#[test]
fn disabled_tracking_leaves_tallies_untouched() {
    if std::env::var("DME_TRACE").is_ok() || std::env::var("DME_TRACE_JSON").is_ok() {
        eprintln!("skipping: DME_TRACE set, tracing is enabled");
        return;
    }
    assert!(!dme_obs::enabled());
    assert!(!dme_obs::alloc_tracking());
    assert!(!dme_obs::allocator_installed());

    let (b0, c0) = dme_obs::thread_alloc_totals();
    // Real allocator traffic through the installed wrapper...
    for i in 0..64usize {
        std::hint::black_box(vec![0u8; 128 + i]);
    }
    // ...moves the raw counter but not the tracking tallies.
    let (b1, c1) = dme_obs::thread_alloc_totals();
    assert_eq!((b1, c1), (b0, c0), "tracking-off hook must not count");
}
