//! Property tests for the profile tree built from live span nestings:
//! across random open/close sequences, per-node self time never
//! exceeds total, direct children stay within their parent, and the
//! self times telescope — Σ self over every node equals Σ total over
//! the roots. The same invariants are checked for the allocation
//! tallies, with the [`dme_obs::TrackingAllocator`] installed so the
//! attribution path is exercised for real.
//!
//! All tests mutate the process-global registry, so they serialize on
//! one mutex and reset state up front (same pattern as
//! `trace_events.rs`).

use proptest::prelude::*;
use std::sync::Mutex;

#[global_allocator]
static GLOBAL: dme_obs::TrackingAllocator<std::alloc::System> =
    dme_obs::TrackingAllocator(std::alloc::System);

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const NAMES: [&str; 4] = ["seed", "propagate", "mct", "undo"];
const MAX_DEPTH: usize = 8;

proptest! {
    #[test]
    fn self_times_sum_to_root_totals(ops in proptest::collection::vec(0u8..6, 1..64)) {
        let _guard = serial();
        dme_obs::reset();
        dme_obs::set_enabled(true);

        // Interpret each op as "open span NAMES[op]" (op < 4, depth
        // permitting) or "close the innermost". Guards close LIFO.
        let mut guards: Vec<dme_obs::Span> = Vec::new();
        for op in ops {
            if (op as usize) < NAMES.len() && guards.len() < MAX_DEPTH {
                guards.push(dme_obs::span(NAMES[op as usize]));
                // Allocator traffic to attribute to the open span.
                std::hint::black_box(vec![0u8; 64]);
            } else {
                guards.pop();
            }
        }
        while guards.pop().is_some() {}
        dme_obs::set_enabled(false);

        let nodes = dme_obs::profile_snapshot();
        let mut child_ns = vec![0u64; nodes.len()];
        let mut child_bytes = vec![0u64; nodes.len()];
        for n in &nodes {
            if let Some(p) = n.parent {
                child_ns[p] += n.stats.total_ns;
                child_bytes[p] += n.stats.alloc_bytes;
            }
        }
        for (i, n) in nodes.iter().enumerate() {
            prop_assert!(n.self_ns <= n.stats.total_ns, "self>total at {}", n.path);
            prop_assert!(
                child_ns[i] <= n.stats.total_ns,
                "children exceed parent at {}: {} > {}",
                n.path, child_ns[i], n.stats.total_ns
            );
            prop_assert_eq!(n.self_ns, n.stats.total_ns - child_ns[i]);
            prop_assert!(child_bytes[i] <= n.stats.alloc_bytes);
            prop_assert_eq!(
                n.self_alloc_bytes,
                n.stats.alloc_bytes - child_bytes[i]
            );
        }
        let self_sum: u64 = nodes.iter().map(|n| n.self_ns).sum();
        let root_total: u64 = nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .map(|n| n.stats.total_ns)
            .sum();
        prop_assert_eq!(self_sum, root_total, "self times must telescope");

        let self_bytes: u64 = nodes.iter().map(|n| n.self_alloc_bytes).sum();
        let root_bytes: u64 = nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .map(|n| n.stats.alloc_bytes)
            .sum();
        prop_assert_eq!(self_bytes, root_bytes, "alloc bytes must telescope");
    }
}

#[test]
fn attribution_charges_the_innermost_open_span() {
    let _guard = serial();
    dme_obs::reset();
    dme_obs::set_enabled(true);
    assert!(dme_obs::allocator_installed());

    {
        let _outer = dme_obs::span("outer");
        std::hint::black_box(vec![0u8; 10_000]);
        {
            let _inner = dme_obs::span("inner");
            std::hint::black_box(vec![0u8; 100_000]);
        }
    }
    dme_obs::set_enabled(false);

    let nodes = dme_obs::profile_snapshot();
    let by_path = |p: &str| nodes.iter().find(|n| n.path == p).unwrap().clone();
    let outer = by_path("outer");
    let inner = by_path("outer/inner");
    assert!(inner.stats.alloc_bytes >= 100_000);
    assert!(outer.stats.alloc_bytes >= inner.stats.alloc_bytes + 10_000);
    // Inner's traffic lands in outer's inclusive tally but not its self
    // tally; the 10k vec stays charged to outer itself.
    assert!(outer.self_alloc_bytes >= 10_000);
    assert!(outer.self_alloc_bytes < 100_000 + 10_000);
    assert!(outer.self_ns <= outer.stats.total_ns);
}
