//! Integration tests for the tracing pipeline: JSONL event schema,
//! span nesting/timing, counter aggregation across worker threads, and
//! manifest round-tripping through the crate's own JSON parser.
//!
//! All tests mutate the process-global registry/sink, so they
//! serialize on one mutex and reset state up front.

use dme_obs::json::{self, Value};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dme_obs_{tag}_{}.jsonl", std::process::id()))
}

#[test]
fn jsonl_events_match_schema() {
    let _guard = serial();
    dme_obs::reset();
    let path = tmp_path("schema");
    dme_obs::set_trace_path(path.to_str().unwrap()).unwrap();

    {
        let _outer = dme_obs::span("outer");
        let _inner = dme_obs::span("inner");
        dme_obs::record(
            "ipm_iter",
            &[("iter", 0.0), ("mu", 1.5e-3), ("rp_inf", 0.25)],
        );
    }
    dme_obs::log::log(dme_obs::Level::Error, format_args!("boom {}", 42));
    dme_obs::close_trace();
    dme_obs::set_enabled(false);

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut kinds = Vec::new();
    let mut last_ts = 0.0f64;
    for line in text.lines() {
        let v = json::parse(line).expect("every line is a standalone JSON object");
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .expect("type")
            .to_string();
        assert_eq!(
            v.get("v").and_then(Value::as_f64),
            Some(f64::from(dme_obs::TRACE_SCHEMA_VERSION))
        );
        let ts = v.get("ts_us").and_then(Value::as_f64).expect("ts_us");
        assert!(ts >= last_ts, "timestamps are monotonic");
        last_ts = ts;
        match ty.as_str() {
            "span" => {
                assert!(v.get("path").and_then(Value::as_str).is_some());
                assert!(v.get("dur_ns").and_then(Value::as_f64).unwrap() >= 0.0);
            }
            "record" => {
                assert_eq!(v.get("kind").and_then(Value::as_str), Some("ipm_iter"));
                let fields = v.get("fields").and_then(Value::as_object).unwrap();
                assert_eq!(fields["mu"].as_f64(), Some(1.5e-3));
            }
            "log" => {
                assert_eq!(v.get("level").and_then(Value::as_str), Some("error"));
                assert_eq!(v.get("msg").and_then(Value::as_str), Some("boom 42"));
            }
            other => panic!("unknown event type {other:?}"),
        }
        kinds.push(ty);
    }
    // Inner span closes before outer; the record precedes both exits.
    assert_eq!(kinds, ["record", "span", "span", "log"]);
}

#[test]
fn spans_nest_and_time_monotonically() {
    let _guard = serial();
    dme_obs::reset();
    dme_obs::set_enabled(true);

    assert_eq!(dme_obs::depth(), 0);
    {
        let outer = dme_obs::span("outer");
        assert!(outer.is_recording());
        assert_eq!(dme_obs::depth(), 1);
        for _ in 0..3 {
            let _inner = dme_obs::span("inner");
            assert_eq!(dme_obs::depth(), 2);
            std::hint::black_box(vec![0u8; 1024]);
        }
    }
    assert_eq!(dme_obs::depth(), 0);
    dme_obs::set_enabled(false);

    let outer = dme_obs::span_stats("outer").expect("outer recorded");
    let inner = dme_obs::span_stats("outer/inner").expect("nested path recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 3);
    assert!(inner.max_ns <= inner.total_ns);
    assert!(
        outer.total_ns >= inner.total_ns,
        "a parent span covers its children: outer={} inner={}",
        outer.total_ns,
        inner.total_ns
    );
    assert!(
        dme_obs::span_stats("inner").is_none(),
        "path is hierarchical"
    );
}

#[test]
fn counters_aggregate_across_worker_threads() {
    let _guard = serial();
    dme_obs::reset();
    dme_obs::set_enabled(true);

    const N: usize = 10_000;
    let mut out = vec![0u64; N];
    // Tiny grain so the pool actually splits the range across workers.
    dme_par::par_fill(&mut out, 64, |i| {
        dme_obs::counter_add("test/worker_increments", 1);
        dme_obs::histogram_record("test/index", i as u64);
        i as u64
    });
    dme_obs::set_enabled(false);

    assert_eq!(dme_obs::counter_value("test/worker_increments"), N as u64);
    let h = dme_obs::histogram_snapshot("test/index").unwrap();
    assert_eq!(h.count, N as u64);
    assert_eq!(h.sum, (N as u64) * (N as u64 - 1) / 2);
    assert_eq!(h.max, N as u64 - 1);
}

#[test]
fn manifest_round_trips_through_parser() {
    let _guard = serial();
    dme_obs::reset();
    dme_obs::set_enabled(true);

    dme_obs::set_meta_str("bin", "trace_events");
    dme_obs::set_meta_num("threads", 3.0);
    dme_obs::set_meta_bool("parallel", true);
    {
        let _s = dme_obs::span("stage");
    }
    dme_obs::counter_add("c", 7);
    for i in 0..(dme_obs::RECORD_CAP + 5) {
        dme_obs::record("r", &[("i", i as f64)]);
    }
    dme_obs::set_enabled(false);

    let v = json::parse(&dme_obs::manifest_json()).expect("manifest parses");
    assert_eq!(
        v.get("schema_version").and_then(Value::as_f64),
        Some(f64::from(dme_obs::MANIFEST_SCHEMA_VERSION))
    );
    let meta = v.get("meta").unwrap();
    assert_eq!(
        meta.get("bin").and_then(Value::as_str),
        Some("trace_events")
    );
    assert_eq!(meta.get("threads").and_then(Value::as_f64), Some(3.0));
    assert_eq!(meta.get("parallel"), Some(&Value::Bool(true)));

    let stage = v.get("spans").unwrap().get("stage").unwrap();
    assert_eq!(stage.get("count").and_then(Value::as_f64), Some(1.0));
    assert_eq!(
        v.get("counters").unwrap().get("c").and_then(Value::as_f64),
        Some(7.0)
    );

    let r = v.get("records").unwrap().get("r").unwrap();
    assert_eq!(r.get("dropped").and_then(Value::as_f64), Some(5.0));
    let rows = r.get("rows").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), dme_obs::RECORD_CAP);
    assert_eq!(rows[3].get("i").and_then(Value::as_f64), Some(3.0));

    assert!(dme_obs::summary_table().contains("stage"));
}
