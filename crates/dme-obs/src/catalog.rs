//! The metric catalog: every counter, histogram, record kind and stage
//! span the DME flow emits, with a one-line description each.
//!
//! Snapshot, trace and manifest consumers should not have to grep the
//! source for metric names; `dmeopt obs ls` prints this table. The
//! catalog is a static registry of *intent* — a name appearing here
//! does not mean the current run touched it (feature flags and engine
//! selection gate several), and instrumentation added under a new name
//! should land here in the same change.

/// Which primitive a catalog entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` tally ([`crate::counter_add`]).
    Counter,
    /// Power-of-two bucket distribution ([`crate::histogram_record`]).
    Histogram,
    /// Bounded structured row series ([`crate::record`]).
    Record,
    /// Hierarchical wall-clock span path ([`crate::span`]).
    Span,
}

impl MetricKind {
    /// Lower-case label used in listings.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::Record => "record",
            MetricKind::Span => "span",
        }
    }
}

/// One catalog row.
#[derive(Debug, Clone, Copy)]
pub struct MetricInfo {
    /// Primitive kind.
    pub kind: MetricKind,
    /// Registered name (span rows give the full `/`-separated path).
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
}

const fn c(name: &'static str, desc: &'static str) -> MetricInfo {
    MetricInfo {
        kind: MetricKind::Counter,
        name,
        desc,
    }
}

const fn h(name: &'static str, desc: &'static str) -> MetricInfo {
    MetricInfo {
        kind: MetricKind::Histogram,
        name,
        desc,
    }
}

const fn r(name: &'static str, desc: &'static str) -> MetricInfo {
    MetricInfo {
        kind: MetricKind::Record,
        name,
        desc,
    }
}

const fn s(name: &'static str, desc: &'static str) -> MetricInfo {
    MetricInfo {
        kind: MetricKind::Span,
        name,
        desc,
    }
}

/// Every metric the flow can emit, grouped by kind and sorted by name
/// within each group.
pub const METRICS: &[MetricInfo] = &[
    // Counters.
    c("dmopt/qp_probes", "QCP bisection probes solved"),
    c(
        "dmopt/solver_iterations",
        "IPM Newton iterations summed over all probes",
    ),
    c(
        "dmopt/warm_start_hits",
        "QCP probes warm-started from the previous solution",
    ),
    c(
        "dosepl/accepted_provisional",
        "swaps accepted provisionally before round signoff",
    ),
    c(
        "dosepl/assignment_evals_avoided",
        "assignment cell re-derives skipped by the delta engine",
    ),
    c(
        "dosepl/distance_cutoffs",
        "candidate pairs discarded by the distance cutoff",
    ),
    c(
        "dosepl/enumerate_endpoints_popped",
        "heap pops during incremental top-K endpoint selection",
    ),
    c(
        "dosepl/enumerate_endpoints_selected",
        "endpoints kept by incremental top-K selection",
    ),
    c(
        "dosepl/enumerate_full_analyze_skipped",
        "round-start full STAs avoided by incremental enumeration",
    ),
    c(
        "dosepl/enumerate_full_walks",
        "rounds enumerated by the full analyze + sort walk",
    ),
    c(
        "dosepl/enumerate_scratch_reuse",
        "rounds reusing the epoch-stamped round scratch",
    ),
    c(
        "dosepl/enumerate_stale_discards",
        "stale or duplicate heap entries discarded during top-K",
    ),
    c(
        "dosepl/grid_cell_evals_avoided",
        "dose-grid cells skipped by banded range queries",
    ),
    c(
        "dosepl/hpwl_fast_nets",
        "nets whose HPWL delta used the cached bbox fast path",
    ),
    c(
        "dosepl/hpwl_rescans",
        "nets needing a full pin rescan (moved sole extreme)",
    ),
    c(
        "dosepl/rejected_bbox",
        "candidates rejected by the dose-bbox filter",
    ),
    c(
        "dosepl/rejected_hpwl",
        "candidates rejected by the HPWL filter",
    ),
    c(
        "dosepl/rejected_leakage",
        "candidates rejected by the leakage filter",
    ),
    c(
        "dosepl/rejected_timing",
        "candidates rejected by incremental timing",
    ),
    c(
        "dosepl/rolled_back",
        "provisionally accepted swaps undone at round signoff",
    ),
    c("dosepl/rounds", "swap rounds executed"),
    c("dosepl/swap_evals", "candidate swaps fully evaluated"),
    c("dosepl/swaps_accepted", "swaps kept after signoff"),
    c("dosepl/swaps_attempted", "candidate swaps considered"),
    c(
        "dosepl/undo_coord_writes",
        "coordinate writes replayed by journal undo",
    ),
    c(
        "dosepl/undo_evals_avoided",
        "gate re-evaluations avoided by STA undo replay",
    ),
    c("qp/backend_admm", "solves taken by the ADMM backend"),
    c(
        "qp/backend_cg",
        "Newton systems solved by conjugate gradient",
    ),
    c(
        "qp/backend_direct",
        "Newton systems solved by the sparse direct backend",
    ),
    c("qp/cg_iterations", "total CG iterations"),
    c("qp/cg_solves", "CG solve calls"),
    c("qp/factorizations", "numeric LDL^T refactorizations"),
    c("qp/ipm_iterations", "interior-point Newton iterations"),
    c("qp/refactor_ns", "wall time spent refactorizing, ns"),
    c("qp/solves", "QP solve entries"),
    c(
        "qp/strategy_basic",
        "IPM solves run by the basic path-following strategy",
    ),
    c(
        "qp/strategy_mehrotra",
        "IPM solves run by the Mehrotra predictor-corrector",
    ),
    c(
        "qp/symbolic_reuse",
        "factorizations reusing the cached symbolic analysis",
    ),
    c("sta/analyze_calls", "full timing analyses"),
    c("sta/gates_evaluated", "gate delay evaluations"),
    c("sta/levels_evaluated", "topological levels visited"),
    c("sta/retime_calls", "incremental re-timing calls"),
    c(
        "sta/retime_pull_calls",
        "pull-mode (mirror scan) re-timings",
    ),
    c("sta/retime_push_calls", "push-mode (dirty cone) re-timings"),
    c(
        "sta/retime_undo_entries",
        "STA undo journal entries recorded",
    ),
    c("sta/retime_undo_replays", "STA undo journal replays"),
    // Histograms.
    h("qp/cg_iters_per_solve", "CG iterations per Newton solve"),
    h(
        "qp/refactor_ns_per_iter",
        "refactorization wall time per IPM iteration, ns",
    ),
    // Record series.
    r(
        "dosepl_round",
        "per-round row: round, candidates, swaps, accepted, mct_ns",
    ),
    r(
        "ipm_iter",
        "per-Newton-iteration row: iter, mu, mu_aff, rp_inf, rd_inf, sigma, alpha, ...",
    ),
    r(
        "qcp_probe",
        "per-bisection-probe row: probe, tau_ns, feasible, iterations, warm",
    ),
    r(
        "qp_solve",
        "per-QPS-solve row (dmeopt qp): n, m, iterations, objective, pri_res, dua_res, solved",
    ),
    // Stage spans (top-level and recurring phases; deeper solver spans
    // nest under these).
    s("flow", "end-to-end co-optimization flow"),
    s(
        "flow/dmopt",
        "dose-map optimization (QCP bisection over tau)",
    ),
    s("flow/dmopt/formulate", "QP formulation assembly"),
    s("flow/dmopt/snap_signoff", "post-snap golden signoff STA"),
    s("flow/dmopt/solve", "one QCP probe solve"),
    s("flow/dmopt/solve/ipm", "interior-point method iterations"),
    s(
        "flow/dmopt/solve/ipm/corrector",
        "corrector pass (centering + second-order correction)",
    ),
    s(
        "flow/dmopt/solve/ipm/corrector/line_search",
        "fraction-to-boundary line search (combined step)",
    ),
    s(
        "flow/dmopt/solve/ipm/corrector/solve",
        "Newton system solve (corrector right-hand side)",
    ),
    s(
        "flow/dmopt/solve/ipm/predictor",
        "affine predictor probe (Mehrotra strategy only)",
    ),
    s(
        "flow/dmopt/solve/ipm/predictor/line_search",
        "fraction-to-boundary line search (affine step)",
    ),
    s(
        "flow/dmopt/solve/ipm/predictor/solve",
        "Newton system solve (affine right-hand side)",
    ),
    s(
        "flow/dmopt/solve/ipm/refactor",
        "numeric LDL^T refactorization",
    ),
    s(
        "flow/dmopt/solve/ipm/start",
        "Mehrotra starting-point heuristic (cold solves; nests its own refactor/solve)",
    ),
    s(
        "flow/dmopt/solve/ipm/symbolic",
        "symbolic analysis (ordering + pattern)",
    ),
    s("flow/dosepl", "dose-aware detailed placement (swap rounds)"),
    s(
        "flow/dosepl/entry_sta",
        "entry full STA establishing the round baseline",
    ),
    s("flow/dosepl/round", "one swap round"),
    s("flow/dosepl/round/commit", "committing accepted swaps"),
    s(
        "flow/dosepl/round/dose_update",
        "dose-map grid update after a swap",
    ),
    s("flow/dosepl/round/enumerate", "candidate pair enumeration"),
    s(
        "flow/dosepl/round/enumerate_paths",
        "critical-path enumeration at round start (top-K or full walk)",
    ),
    s(
        "flow/dosepl/round/filter",
        "bbox/HPWL/leakage candidate filters",
    ),
    s("flow/dosepl/round/repack", "row repacking after a swap"),
    s(
        "flow/dosepl/round/retime_eval",
        "incremental timing of a candidate",
    ),
    s(
        "flow/dosepl/round/retime_undo",
        "journal undo of a rejected candidate",
    ),
    s("flow/dosepl/round_signoff", "per-round signoff STA"),
    s("flow/dosepl/signoff", "final dosepl signoff STA"),
    s("flow/golden_sta", "golden full STA checkpoints"),
    s("flow/legalize", "displacement-preserving legalization"),
    s("flow/place", "initial placement"),
];

/// Renders the catalog as an aligned text table, one metric per line,
/// grouped by kind.
pub fn catalog_table() -> String {
    let name_w = METRICS.iter().map(|m| m.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    let mut last_kind: Option<MetricKind> = None;
    for m in METRICS {
        if last_kind != Some(m.kind) {
            if last_kind.is_some() {
                out.push('\n');
            }
            out.push_str(&format!("{}s:\n", m.kind.name()));
            last_kind = Some(m.kind);
        }
        out.push_str(&format!("  {:<name_w$}  {}\n", m.name, m.desc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_grouped_and_sorted() {
        let mut seen = std::collections::BTreeSet::new();
        let mut last: Option<(u8, &str)> = None;
        for m in METRICS {
            assert!(seen.insert((m.kind.name(), m.name)), "duplicate {}", m.name);
            assert!(!m.desc.is_empty(), "{} lacks a description", m.name);
            let key = (
                match m.kind {
                    MetricKind::Counter => 0u8,
                    MetricKind::Histogram => 1,
                    MetricKind::Record => 2,
                    MetricKind::Span => 3,
                },
                m.name,
            );
            if let Some(prev) = last {
                assert!(prev < key, "{:?} out of order after {:?}", key, prev);
            }
            last = Some(key);
        }
    }

    #[test]
    fn table_lists_every_metric() {
        let table = catalog_table();
        for m in METRICS {
            assert!(table.contains(m.name), "missing {}", m.name);
        }
        for kind in ["counters:", "histograms:", "records:", "spans:"] {
            assert!(table.contains(kind), "missing group {kind}");
        }
    }
}
