//! The in-memory telemetry registry: counters, histograms, span
//! aggregates and bounded record series.
//!
//! Everything lives behind coarse mutexes keyed by name. The hot paths
//! only reach this module when tracing is enabled ([`crate::enabled`]
//! gates every public entry point in `lib.rs` with a single relaxed
//! atomic load), so lock contention is a diagnostics-mode cost, not a
//! production one. Maps are `BTreeMap` so every exported artifact is
//! deterministically ordered.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of power-of-two histogram buckets: bucket `i` holds values
/// `v` with `2^(i-1) ≤ v < 2^i` (bucket 0 holds zero), and the last
/// bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A fixed-bucket power-of-two histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    /// Bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Index of the bucket a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    pub(crate) fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Folds another histogram's samples into this one (bucket-wise).
    pub(crate) fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q ∈ [0, 1]`: the upper edge of the
    /// first bucket whose cumulative count reaches `q·count`, clamped to
    /// the observed maximum. Resolution is therefore one power of two —
    /// sufficient for iteration counts and cone sizes.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                let upper = if i == 0 {
                    0
                } else if i < HISTOGRAM_BUCKETS - 1 {
                    (1u64 << i) - 1
                } else {
                    self.max
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// Aggregate timing and allocation attribution of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Total wall-clock time, ns.
    pub total_ns: u64,
    /// Longest single execution, ns.
    pub max_ns: u64,
    /// Bytes allocated while this span was open on its thread
    /// (inclusive of child spans; 0 unless a
    /// [`crate::TrackingAllocator`] is installed and tracking is on).
    pub alloc_bytes: u64,
    /// Allocation count over the same windows.
    pub alloc_count: u64,
    /// Distribution of per-execution durations (ns), powering the
    /// profile tree's p50/p95 columns.
    pub dur_hist: Histogram,
}

impl SpanStats {
    /// Folds one completed execution into this aggregate.
    pub(crate) fn record_one(&mut self, ns: u64, alloc_bytes: u64, alloc_count: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.alloc_bytes = self.alloc_bytes.saturating_add(alloc_bytes);
        self.alloc_count = self.alloc_count.saturating_add(alloc_count);
        self.dur_hist.record(ns);
    }

    /// Folds another aggregate (a thread-local delta) into this one.
    pub(crate) fn merge(&mut self, delta: &SpanStats) {
        self.count += delta.count;
        self.total_ns = self.total_ns.saturating_add(delta.total_ns);
        self.max_ns = self.max_ns.max(delta.max_ns);
        self.alloc_bytes = self.alloc_bytes.saturating_add(delta.alloc_bytes);
        self.alloc_count = self.alloc_count.saturating_add(delta.alloc_count);
        self.dur_hist.merge(&delta.dur_hist);
    }
}

/// Cap on retained rows per record series; further rows are counted in
/// [`RecordSeries::dropped`] rather than silently discarded.
pub const RECORD_CAP: usize = 4096;

/// A bounded series of structured records (e.g. one row per IPM Newton
/// iteration).
#[derive(Debug, Clone, Default)]
pub struct RecordSeries {
    /// Retained rows, in emission order (at most [`RECORD_CAP`]).
    pub rows: Vec<Vec<(&'static str, f64)>>,
    /// Rows dropped once the cap was reached.
    pub dropped: u64,
}

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<&'static str, u64>>,
    pub(crate) histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    pub(crate) spans: Mutex<BTreeMap<String, SpanStats>>,
    pub(crate) records: Mutex<BTreeMap<&'static str, RecordSeries>>,
}

impl Registry {
    pub(crate) fn counter_add(&self, name: &'static str, delta: u64) {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        *map.entry(name).or_insert(0) += delta;
    }

    pub(crate) fn histogram_record(&self, name: &'static str, value: u64) {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        map.entry(name).or_default().record(value);
    }

    pub(crate) fn span_merge(&self, path: &str, delta: &SpanStats) {
        let mut map = self.spans.lock().expect("span registry poisoned");
        // get_mut-first so the steady state (path already present from a
        // prior flush) needs no owned key.
        match map.get_mut(path) {
            Some(s) => s,
            None => map.entry(path.to_string()).or_default(),
        }
        .merge(delta);
    }

    pub(crate) fn record(&self, kind: &'static str, fields: &[(&'static str, f64)]) {
        let mut map = self.records.lock().expect("record registry poisoned");
        let series = map.entry(kind).or_default();
        if series.rows.len() < RECORD_CAP {
            series.rows.push(fields.to_vec());
        } else {
            series.dropped += 1;
        }
    }

    pub(crate) fn reset(&self) {
        self.counters.lock().expect("counters").clear();
        self.histograms.lock().expect("histograms").clear();
        self.spans.lock().expect("spans").clear();
        self.records.lock().expect("records").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        for v in [0, 1, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1028);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[11], 1);
        assert!((h.mean() - 257.0).abs() < 1e-12);
    }

    #[test]
    fn record_series_is_bounded() {
        let r = Registry::default();
        for i in 0..(RECORD_CAP + 10) {
            r.record("k", &[("i", i as f64)]);
        }
        let map = r.records.lock().unwrap();
        let s = &map["k"];
        assert_eq!(s.rows.len(), RECORD_CAP);
        assert_eq!(s.dropped, 10);
    }
}
