//! Thread-local allocation accounting for span attribution.
//!
//! [`TrackingAllocator`] wraps any [`GlobalAlloc`] and, when tracking
//! is on, bumps two thread-local monotonic tallies (bytes requested,
//! allocation count) on every `alloc`/`alloc_zeroed`/`realloc`. Spans
//! snapshot the tallies at enter and read the delta at drop, so each
//! span path accumulates the allocations performed while it was the
//! innermost open span on its thread (inclusive of children; the
//! profile tree derives per-span *self* allocation by subtracting the
//! children, see [`crate::profile`]).
//!
//! # Cost model
//!
//! The hook is **branch-only when tracking is off**: one relaxed
//! atomic load per allocation, no thread-local access, no extra
//! allocation (the `no_alloc` integration test runs with this wrapper
//! installed and still asserts a zero allocation count for the
//! disabled-tracing span path). Tracking follows [`crate::enabled`] —
//! [`crate::set_enabled`] and the `DME_TRACE`/`DME_TRACE_JSON`
//! environment toggles flip both.
//!
//! Tallies only move if the embedding binary actually installs the
//! wrapper as its `#[global_allocator]` (`dmeopt` does; libraries
//! cannot). [`allocator_installed`] probes for that at runtime so
//! manifests can say whether their alloc columns are meaningful.
//!
//! Deallocation is deliberately not tracked: the tallies answer
//! "how much allocator traffic did this phase cause", not "what is
//! the live heap size" — churn is the cost signal for a hot path.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);

struct Tally {
    bytes: Cell<u64>,
    count: Cell<u64>,
    /// Re-entrancy pause depth: while positive, allocations are not
    /// counted. The span machinery holds a pause over its own internal
    /// work (path interning, registry inserts, sink formatting) so
    /// instrumentation overhead is never charged to the caller.
    paused: Cell<u32>,
}

thread_local! {
    static TALLY: Tally = const {
        Tally {
            bytes: Cell::new(0),
            count: Cell::new(0),
            paused: Cell::new(0),
        }
    };
}

/// A `#[global_allocator]` wrapper that feeds the per-thread
/// allocation tallies read by spans. Wrap whatever allocator the
/// binary would otherwise use: `TrackingAllocator(System)`.
pub struct TrackingAllocator<A>(pub A);

// SAFETY: every method delegates directly to the inner allocator; the
// tallies are side effects on plain thread-local cells.
unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAllocator<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            note(layout.size());
        }
        unsafe { self.0.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.0.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            note(layout.size());
        }
        unsafe { self.0.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            note(new_size);
        }
        unsafe { self.0.realloc(ptr, layout, new_size) }
    }
}

fn note(bytes: usize) {
    // try_with: the allocator can run during TLS teardown, where
    // touching a destroyed thread-local would abort.
    let _ = TALLY.try_with(|t| {
        if t.paused.get() == 0 {
            t.bytes.set(t.bytes.get().saturating_add(bytes as u64));
            t.count.set(t.count.get().saturating_add(1));
        }
    });
}

pub(crate) fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// Whether the allocation hook is currently counting.
pub fn alloc_tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// This thread's monotonic allocation tallies: `(bytes, count)` since
/// thread start. Zero forever if no [`TrackingAllocator`] is installed
/// or tracking never turned on.
pub fn thread_alloc_totals() -> (u64, u64) {
    TALLY
        .try_with(|t| (t.bytes.get(), t.count.get()))
        .unwrap_or((0, 0))
}

/// RAII guard suppressing allocation counting on this thread while
/// held (nestable).
pub(crate) struct PauseGuard(());

pub(crate) fn pause() -> PauseGuard {
    let _ = TALLY.try_with(|t| t.paused.set(t.paused.get() + 1));
    PauseGuard(())
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        let _ = TALLY.try_with(|t| t.paused.set(t.paused.get().saturating_sub(1)));
    }
}

/// Probes whether a [`TrackingAllocator`] is actually installed as the
/// global allocator: with tracking on, a test allocation must move the
/// tallies. Returns `false` when tracking is off (nothing to observe).
pub fn allocator_installed() -> bool {
    if !alloc_tracking() {
        return false;
    }
    let (b0, c0) = thread_alloc_totals();
    std::hint::black_box(Box::new(0xD05Eu64));
    let (b1, c1) = thread_alloc_totals();
    b1 > b0 || c1 > c0
}
