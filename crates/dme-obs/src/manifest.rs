//! Run manifests: a single JSON document summarizing a run.
//!
//! The manifest gathers everything the registry accumulated — stage
//! span timings, counters, histograms, bounded record series — plus
//! caller-supplied metadata (binary name, thread count, feature flags,
//! git SHA). `dmeopt --report <path>` and the bench bins write one per
//! run; [`summary_table`] renders the same data as a human-readable
//! end-of-run table.

use crate::json;
use crate::registry::RECORD_CAP;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Version of the manifest document layout, stamped as
/// `"schema_version"`; bumped whenever the structure changes shape.
/// v2 added the top-level `"qor"` section and histogram percentiles;
/// v3 added the `"profile"` section (hierarchical self/total span tree
/// with allocation attribution).
pub const MANIFEST_SCHEMA_VERSION: u32 = 3;

/// A caller-supplied metadata value attached to the manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaValue {
    /// Free-form text (binary name, git SHA, feature list).
    Str(String),
    /// A numeric fact (thread count, scale factor).
    Num(f64),
    /// An on/off fact (feature flags).
    Bool(bool),
}

static META: Mutex<BTreeMap<String, MetaValue>> = Mutex::new(BTreeMap::new());
static QOR: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());
static REPORT_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Attaches a string metadata entry to the next manifest.
pub fn set_meta_str(key: &str, value: &str) {
    META.lock()
        .expect("meta poisoned")
        .insert(key.to_string(), MetaValue::Str(value.to_string()));
}

/// Attaches a numeric metadata entry to the next manifest.
pub fn set_meta_num(key: &str, value: f64) {
    META.lock()
        .expect("meta poisoned")
        .insert(key.to_string(), MetaValue::Num(value));
}

/// Attaches a boolean metadata entry to the next manifest.
pub fn set_meta_bool(key: &str, value: bool) {
    META.lock()
        .expect("meta poisoned")
        .insert(key.to_string(), MetaValue::Bool(value));
}

/// Attaches a quality-of-result metric to the next manifest's `"qor"`
/// section. QoR values are the run-over-run comparison surface: the
/// numbers the paper's tables report (ΔLeakage, achieved clock period,
/// WNS) plus flow tallies (accepted swaps). `dme-qor` normalizes this
/// section into `results/qor_history.jsonl` and gates on it.
pub fn set_qor(key: &str, value: f64) {
    QOR.lock()
        .expect("qor poisoned")
        .insert(key.to_string(), value);
}

/// Snapshot of the QoR metrics accumulated so far (key → value).
pub fn qor_values() -> BTreeMap<String, f64> {
    QOR.lock().expect("qor poisoned").clone()
}

/// Registers the path `write_report` will be asked to use, so the panic
/// hook ([`crate::install_panic_hook`]) can write a manifest stub for a
/// run that dies before its normal end-of-run reporting.
pub fn set_report_path(path: &str) {
    *REPORT_PATH.lock().expect("report path poisoned") = Some(path.to_string());
}

/// The report path registered via [`set_report_path`], if any.
pub fn report_path() -> Option<String> {
    REPORT_PATH.lock().expect("report path poisoned").clone()
}

pub(crate) fn reset_meta() {
    META.lock().expect("meta poisoned").clear();
    QOR.lock().expect("qor poisoned").clear();
}

/// Serializes the current registry contents (and metadata) as one JSON
/// manifest document.
pub fn manifest_json() -> String {
    crate::span::flush_current_thread();
    let reg = crate::registry();
    let mut s = String::with_capacity(4096);
    let _ = write!(s, "{{\"schema_version\":{MANIFEST_SCHEMA_VERSION}");

    s.push_str(",\"meta\":{");
    {
        let meta = META.lock().expect("meta poisoned");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, k);
            s.push(':');
            match v {
                MetaValue::Str(t) => json::write_escaped(&mut s, t),
                MetaValue::Num(x) => json::write_f64(&mut s, *x),
                MetaValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            }
        }
    }
    s.push('}');

    s.push_str(",\"qor\":{");
    {
        let qor = QOR.lock().expect("qor poisoned");
        for (i, (k, v)) in qor.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, k);
            s.push(':');
            json::write_f64(&mut s, *v);
        }
    }
    s.push('}');

    s.push_str(",\"spans\":{");
    {
        let spans = reg.spans.lock().expect("spans poisoned");
        for (i, (path, st)) in spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, path);
            let _ = write!(
                s,
                ":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                st.count, st.total_ns, st.max_ns
            );
        }
    }
    s.push('}');

    s.push_str(",\"profile\":{");
    {
        let _ = write!(
            s,
            "\"alloc_tracking\":{}",
            crate::alloc::allocator_installed()
        );
        s.push_str(",\"nodes\":{");
        for (i, n) in crate::profile::profile_snapshot().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, &n.path);
            let _ = write!(
                s,
                ":{{\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"alloc_bytes\":{},\"alloc_count\":{},\
                 \"self_alloc_bytes\":{},\"self_alloc_count\":{}}}",
                n.stats.count,
                n.stats.total_ns,
                n.self_ns,
                n.stats.max_ns,
                n.p50_ns,
                n.p95_ns,
                n.stats.alloc_bytes,
                n.stats.alloc_count,
                n.self_alloc_bytes,
                n.self_alloc_count
            );
        }
        s.push_str("}}");
    }

    s.push_str(",\"counters\":{");
    {
        let counters = reg.counters.lock().expect("counters poisoned");
        for (i, (name, v)) in counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, name);
            let _ = write!(s, ":{v}");
        }
    }
    s.push('}');

    s.push_str(",\"histograms\":{");
    {
        let hists = reg.histograms.lock().expect("histograms poisoned");
        for (i, (name, h)) in hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, name);
            let _ = write!(
                s,
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            );
            json::write_f64(&mut s, h.mean());
            s.push_str(",\"buckets\":[");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("]}");
        }
    }
    s.push('}');

    s.push_str(",\"records\":{");
    {
        let records = reg.records.lock().expect("records poisoned");
        for (i, (kind, series)) in records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::write_escaped(&mut s, kind);
            let _ = write!(s, ":{{\"cap\":{RECORD_CAP},\"dropped\":{}", series.dropped);
            s.push_str(",\"rows\":[");
            for (j, row) in series.rows.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('{');
                for (k, (name, v)) in row.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    json::write_escaped(&mut s, name);
                    s.push(':');
                    json::write_f64(&mut s, *v);
                }
                s.push('}');
            }
            s.push_str("]}");
        }
    }
    s.push_str("}}");
    s
}

/// Writes [`manifest_json`] to `path`.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_report(path: &str) -> std::io::Result<()> {
    std::fs::write(path, manifest_json())
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1.0e6)
}

/// Renders the registry as a human-readable end-of-run summary table
/// (spans sorted by total time, then counters, then histogram means).
pub fn summary_table() -> String {
    crate::span::flush_current_thread();
    let reg = crate::registry();
    let mut out = String::new();
    out.push_str("== run summary ==\n");

    let spans = reg.spans.lock().expect("spans poisoned");
    if !spans.is_empty() {
        let mut rows: Vec<_> = spans.iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        let w = rows.iter().map(|(p, _)| p.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "{:<w$}  {:>6}  {:>12}  {:>12}",
            "span", "count", "total_ms", "max_ms"
        );
        for (path, st) in rows {
            let _ = writeln!(
                out,
                "{path:<w$}  {:>6}  {:>12}  {:>12}",
                st.count,
                fmt_ms(st.total_ns),
                fmt_ms(st.max_ns)
            );
        }
    }
    drop(spans);

    let qor = QOR.lock().expect("qor poisoned");
    if !qor.is_empty() {
        out.push_str("-- qor --\n");
        let w = qor.keys().map(|k| k.len()).max().unwrap_or(4);
        for (name, v) in qor.iter() {
            let _ = writeln!(out, "{name:<w$}  {v:.6}");
        }
    }
    drop(qor);

    let counters = reg.counters.lock().expect("counters poisoned");
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        let w = counters.keys().map(|k| k.len()).max().unwrap_or(4);
        for (name, v) in counters.iter() {
            let _ = writeln!(out, "{name:<w$}  {v}");
        }
    }
    drop(counters);

    let hists = reg.histograms.lock().expect("histograms poisoned");
    if !hists.is_empty() {
        out.push_str("-- histograms --\n");
        let w = hists.keys().map(|k| k.len()).max().unwrap_or(4);
        for (name, h) in hists.iter() {
            let _ = writeln!(
                out,
                "{name:<w$}  count={} mean={:.1} p50={} p95={} p99={} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
    }
    drop(hists);

    let records = reg.records.lock().expect("records poisoned");
    if !records.is_empty() {
        out.push_str("-- record series --\n");
        let w = records.keys().map(|k| k.len()).max().unwrap_or(4);
        for (kind, series) in records.iter() {
            let _ = writeln!(
                out,
                "{kind:<w$}  rows={} dropped={}",
                series.rows.len(),
                series.dropped
            );
        }
    }
    out
}
