//! The background snapshot publisher.
//!
//! [`start`] arms the live stream, spawns a `dme-snapshot` thread and
//! publishes a [`crate::snapshot`] document to the configured path
//! every interval until the returned [`Publisher`] handle is stopped or
//! dropped — at which point one last snapshot goes out with
//! `status: "final"`. The process panic hook additionally calls
//! [`publish_panic`] so a crashing run leaves a `status: "panicked"`
//! snapshot alongside the panicked manifest.
//!
//! One publisher is active per process at a time (the publisher state
//! lives in a process-wide slot so the panic hook can reach it);
//! starting a second while one is running replaces the slot, and the
//! older handle's stop becomes a no-op for publication purposes.

use crate::snapshot::SnapshotState;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Active {
    path: String,
    state: SnapshotState,
    generation: u64,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Handle to a running snapshot publisher; stop it explicitly with
/// [`Publisher::stop`] or implicitly by dropping it.
pub struct Publisher {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    generation: u64,
}

/// Publishes one snapshot with the given status if a publisher is
/// active. Returns the sequence number written, if any.
fn publish(status: &str) -> Option<u64> {
    let mut guard = ACTIVE.lock().expect("publisher slot poisoned");
    let active = guard.as_mut()?;
    let doc = active.state.tick(status);
    let seq = active.state.seq();
    if let Err(e) = crate::snapshot::write_atomic(&active.path, &doc) {
        crate::log::log(
            crate::Level::Warn,
            format_args!("snapshot publish to {} failed: {e}", active.path),
        );
        return None;
    }
    Some(seq)
}

/// Called from the panic hook: emits a last `status: "panicked"`
/// snapshot if a publisher is active. Best-effort; never panics.
pub(crate) fn publish_panic() {
    // A poisoned slot (panic while publishing) is left alone. The slot
    // is consumed so that the unwinding `Publisher` drop cannot follow
    // up and overwrite the "panicked" snapshot with a "final" one.
    if let Ok(mut guard) = ACTIVE.try_lock() {
        if let Some(mut active) = guard.take() {
            let doc = active.state.tick("panicked");
            let _ = crate::snapshot::write_atomic(&active.path, &doc);
        }
    }
}

/// Starts the snapshot publisher: enables telemetry, arms the live
/// stream and begins publishing to `path` every `interval_ms`
/// milliseconds (clamped to ≥ 10). The first snapshot is written
/// immediately so watchers have something to attach to.
pub fn start(path: &str, interval_ms: u64) -> Publisher {
    crate::set_enabled(true);
    crate::stream::set_stream_armed(true);
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    *ACTIVE.lock().expect("publisher slot poisoned") = Some(Active {
        path: path.to_string(),
        state: SnapshotState::new(),
        generation,
    });
    publish("running");
    let interval = Duration::from_millis(interval_ms.max(10));
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("dme-snapshot".into())
        .spawn(move || {
            // Sleep in short slices so stop requests land promptly even
            // with a long publish interval.
            let slice = Duration::from_millis(25).min(interval);
            let mut elapsed = Duration::ZERO;
            loop {
                std::thread::sleep(slice);
                if stop2.load(Ordering::Relaxed) {
                    return;
                }
                elapsed += slice;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    publish("running");
                }
            }
        })
        .expect("spawn dme-snapshot thread");
    Publisher {
        stop,
        join: Some(join),
        generation,
    }
}

/// Starts a publisher from the environment: `DME_SNAPSHOT_MS` gives
/// the interval (must parse > 0), `DME_SNAPSHOT_PATH` the destination
/// (default `snapshot.json`). Returns `None` when `DME_SNAPSHOT_MS` is
/// unset or invalid.
pub fn start_from_env() -> Option<Publisher> {
    let interval_ms = std::env::var("DME_SNAPSHOT_MS")
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .filter(|ms| *ms > 0)?;
    let path = std::env::var("DME_SNAPSHOT_PATH").unwrap_or_else(|_| "snapshot.json".to_string());
    Some(start(&path, interval_ms))
}

impl Publisher {
    /// Stops the background thread and publishes the `final` snapshot.
    /// Idempotent; also invoked on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
            let mut guard = ACTIVE.lock().expect("publisher slot poisoned");
            // Only finalize the slot if it is still ours (a newer
            // publisher may have replaced it).
            if guard
                .as_ref()
                .is_some_and(|a| a.generation == self.generation)
            {
                let active = guard.as_mut().expect("checked above");
                let doc = active.state.tick("final");
                if let Err(e) = crate::snapshot::write_atomic(&active.path, &doc) {
                    crate::log::log(
                        crate::Level::Warn,
                        format_args!("final snapshot to {} failed: {e}", active.path),
                    );
                }
                *guard = None;
            }
        }
    }
}

impl Drop for Publisher {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publisher_writes_running_then_final() {
        let dir = std::env::temp_dir().join(format!("dme_pub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let path_s = path.to_str().unwrap();
        let mut publisher = start(path_s, 10);
        // The first snapshot is synchronous.
        let text = std::fs::read_to_string(&path).expect("initial snapshot exists");
        let doc = crate::json::parse(&text).expect("snapshot parses");
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("running"));
        std::thread::sleep(Duration::from_millis(80));
        publisher.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(&text).expect("final snapshot parses");
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("final"));
        // The interval loop got at least one tick in before the final.
        assert!(doc.get("seq").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 2.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn start_from_env_requires_interval() {
        // The test harness does not set DME_SNAPSHOT_MS for unit tests.
        if std::env::var("DME_SNAPSHOT_MS").is_err() {
            assert!(start_from_env().is_none());
        }
    }
}
