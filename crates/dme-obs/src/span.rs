//! Hierarchical timing spans.
//!
//! A [`Span`] is an RAII guard: construction notes the wall clock and
//! pushes the span name onto a thread-local stack; drop pops it, joins
//! the stack into a `/`-separated path (`flow/dmopt/solve`), folds the
//! duration into the registry aggregate, and emits a JSONL event if a
//! sink is open. When tracing is disabled the guard holds `None` — no
//! clock read, no thread-local touch and no heap allocation.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard timing one named region; create via [`crate::span`].
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    start: Instant,
    depth: usize,
}

impl Span {
    pub(crate) fn disabled() -> Self {
        Span { active: None }
    }

    pub(crate) fn enter(name: &'static str) -> Self {
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len()
        });
        Span {
            active: Some(ActiveSpan {
                start: Instant::now(),
                depth,
            }),
        }
    }

    /// Whether this span is actually recording (tracing was enabled at
    /// creation time).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur = active.start.elapsed();
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Defensive: if spans were dropped out of order, unwind to
            // this span's depth rather than corrupting the stack.
            s.truncate(active.depth);
            let path = s.join("/");
            s.pop();
            path
        });
        crate::registry().span_record(&path, dur);
        crate::sink::emit_span(&path, u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}
