//! Hierarchical timing spans with per-span allocation attribution.
//!
//! A [`Span`] is an RAII guard: construction interns the span's
//! `/`-separated path (`flow/dmopt/solve`) into a thread-local tree,
//! notes the wall clock and this thread's allocation tallies, and
//! pushes the node onto the open-span stack; drop pops it and folds the
//! duration and allocation delta into the node's thread-local
//! aggregate, emitting a JSONL event if a sink is open. When tracing is
//! disabled the guard holds `None` — no clock read, no thread-local
//! touch and no heap allocation.
//!
//! # Batched publication
//!
//! Span drops do **not** touch the global registry: each exit folds
//! into a per-node [`SpanStats`] delta held in this thread's tree, and
//! the accumulated deltas flush to [`crate::registry`] only when the
//! thread's open-span stack empties (the outermost span of a burst
//! closes). Every registry read path additionally calls
//! [`flush_current_thread`] first, so readers on a thread with no open
//! spans always observe exact totals. The tight enter/exit loops in
//! dosePl (one span per candidate site) therefore cost two clock reads
//! and a thread-local update each, not a global mutex plus a
//! `BTreeMap<String>` lookup.
//!
//! # Path interning
//!
//! Every `(parent, name)` pair a thread observes is interned once into
//! a thread-local node that caches the joined path string. Steady-state
//! span drops therefore do **not** allocate the path. The one-time
//! interning cost (and the flush/sink work) runs under an allocation
//! pause ([`crate::alloc`]) so instrumentation overhead is never
//! charged to the enclosing span's allocation tallies.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::SpanStats;

/// One interned span-path node on this thread.
struct Node {
    name: &'static str,
    /// Cached `/`-joined path from the root to this node.
    path: String,
    /// Child node indices; fan-out per phase is small, so child lookup
    /// is a linear scan comparing names.
    children: Vec<usize>,
    /// Executions accumulated since the last flush to the registry.
    stats: SpanStats,
    /// Interned stream id for the live event stream (0 = not yet
    /// assigned; assigned lazily the first time the stream is armed).
    stream_id: u32,
}

struct Tls {
    /// Node 0 is the synthetic root (empty path, never recorded).
    nodes: Vec<Node>,
    /// Open spans, innermost last (indices into `nodes`).
    stack: Vec<usize>,
    /// Nodes whose `stats` hold unflushed executions.
    dirty: Vec<usize>,
}

impl Tls {
    fn new() -> Self {
        Tls {
            nodes: vec![Node {
                name: "",
                path: String::new(),
                children: Vec::new(),
                stats: SpanStats::default(),
                stream_id: 0,
            }],
            stack: Vec::new(),
            dirty: Vec::new(),
        }
    }

    fn intern(&mut self, parent: usize, name: &'static str) -> usize {
        for &c in &self.nodes[parent].children {
            if self.nodes[c].name == name {
                return c;
            }
        }
        let path = if parent == 0 {
            name.to_string()
        } else {
            format!("{}/{}", self.nodes[parent].path, name)
        };
        let id = self.nodes.len();
        self.nodes.push(Node {
            name,
            path,
            children: Vec::new(),
            stats: SpanStats::default(),
            stream_id: 0,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Publishes every dirty node's accumulated delta to the registry
    /// and clears the thread-local aggregates.
    fn flush(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let reg = crate::registry();
        for id in std::mem::take(&mut self.dirty) {
            let node = &mut self.nodes[id];
            let delta = std::mem::take(&mut node.stats);
            reg.span_merge(&node.path, &delta);
        }
    }
}

thread_local! {
    // Option so that disabled-mode probes (`depth()`) never allocate
    // the root node.
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

/// RAII guard timing one named region; create via [`crate::span`].
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    node: usize,
    depth: usize,
    alloc_bytes0: u64,
    alloc_count0: u64,
    start: Instant,
}

impl Span {
    pub(crate) fn disabled() -> Self {
        Span { active: None }
    }

    pub(crate) fn enter(name: &'static str) -> Self {
        let pause = crate::alloc::pause();
        let streaming = crate::stream::stream_armed();
        let (node, depth, stream_id) = TLS.with(|t| {
            let mut t = t.borrow_mut();
            let t = t.get_or_insert_with(Tls::new);
            let parent = t.stack.last().copied().unwrap_or(0);
            let node = t.intern(parent, name);
            t.stack.push(node);
            let sid = if streaming {
                let n = &mut t.nodes[node];
                if n.stream_id == 0 {
                    n.stream_id = crate::stream::intern_name(&n.path);
                }
                n.stream_id
            } else {
                0
            };
            (node, t.stack.len(), sid)
        });
        if streaming {
            crate::stream::on_span_enter(stream_id, depth);
        }
        drop(pause);
        // Snapshot tallies and clock last, so interning cost is outside
        // the measured window.
        let (alloc_bytes0, alloc_count0) = crate::alloc::thread_alloc_totals();
        Span {
            active: Some(ActiveSpan {
                node,
                depth,
                alloc_bytes0,
                alloc_count0,
                start: Instant::now(),
            }),
        }
    }

    /// Whether this span is actually recording (tracing was enabled at
    /// creation time).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur = active.start.elapsed();
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let (bytes1, count1) = crate::alloc::thread_alloc_totals();
        let alloc_bytes = bytes1.saturating_sub(active.alloc_bytes0);
        let alloc_count = count1.saturating_sub(active.alloc_count0);
        let _pause = crate::alloc::pause();
        let streaming = crate::stream::stream_armed();
        let stream_id = TLS.with(|t| {
            let mut t = t.borrow_mut();
            let t = t.get_or_insert_with(Tls::new);
            // Defensive: if spans were dropped out of order, unwind to
            // this span's depth rather than corrupting the stack.
            t.stack.truncate(active.depth);
            t.stack.pop();
            let node = &mut t.nodes[active.node];
            let was_clean = node.stats.count == 0;
            node.stats.record_one(ns, alloc_bytes, alloc_count);
            let sid = if streaming {
                if node.stream_id == 0 {
                    node.stream_id = crate::stream::intern_name(&node.path);
                }
                node.stream_id
            } else {
                0
            };
            crate::sink::emit_span(&node.path, ns);
            if was_clean {
                t.dirty.push(active.node);
            }
            if t.stack.is_empty() {
                t.flush();
            }
            sid
        });
        if streaming {
            crate::stream::on_span_exit(stream_id, active.depth, ns);
        }
    }
}

/// Publishes this thread's unflushed span deltas to the registry.
///
/// Called by every registry read path (`span_stats`, manifest/profile
/// snapshots, `reset`) so a reader whose own spans are closed sees
/// exact aggregates. A no-op when the thread has never opened a span or
/// when its TLS is mid-borrow (re-entrant read from inside `Drop`).
pub(crate) fn flush_current_thread() {
    let _pause = crate::alloc::pause();
    let _ = TLS.try_with(|t| {
        if let Ok(mut t) = t.try_borrow_mut() {
            if let Some(t) = t.as_mut() {
                t.flush();
            }
        }
    });
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn depth() -> usize {
    TLS.with(|t| t.borrow().as_ref().map_or(0, |t| t.stack.len()))
}
