//! The JSONL event sink.
//!
//! When a trace path is configured (`DME_TRACE_JSON=<path>` or
//! [`crate::set_trace_path`]), every span exit, structured record and
//! log line is appended to the file as one self-contained JSON object
//! per line. Lines are flushed eagerly: tracing is a diagnostics mode,
//! and a crash mid-run must not lose the events leading up to it.

use crate::json;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Version stamped into every event line as `"v"`, bumped whenever the
/// event schema changes shape.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Mirrors `SINK.is_some()` so the per-span-exit open check is one
/// relaxed load instead of a global mutex acquisition.
static SINK_OPEN: AtomicBool = AtomicBool::new(false);

/// Monotonic process-relative clock for event timestamps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn ts_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

pub(crate) fn set_path(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("trace sink poisoned") = Some(BufWriter::new(file));
    SINK_OPEN.store(true, Ordering::Relaxed);
    Ok(())
}

pub(crate) fn is_open() -> bool {
    SINK_OPEN.load(Ordering::Relaxed)
}

pub(crate) fn close() {
    let mut guard = SINK.lock().expect("trace sink poisoned");
    SINK_OPEN.store(false, Ordering::Relaxed);
    *guard = None;
}

/// Writes one pre-serialized JSON object line to the sink, if open.
fn emit_line(line: &str) {
    let mut guard = SINK.lock().expect("trace sink poisoned");
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Starts an event object with the common envelope fields.
fn event(kind: &str) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"type\":\"{kind}\",\"v\":{TRACE_SCHEMA_VERSION},\"ts_us\":{}",
        ts_us()
    );
    s
}

pub(crate) fn emit_span(path: &str, dur_ns: u64) {
    if !is_open() {
        return;
    }
    let mut s = event("span");
    s.push_str(",\"path\":");
    json::write_escaped(&mut s, path);
    let _ = write!(s, ",\"dur_ns\":{dur_ns}}}");
    emit_line(&s);
}

pub(crate) fn emit_record(kind: &str, fields: &[(&'static str, f64)]) {
    if !is_open() {
        return;
    }
    let mut s = event("record");
    s.push_str(",\"kind\":");
    json::write_escaped(&mut s, kind);
    s.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json::write_escaped(&mut s, k);
        s.push(':');
        json::write_f64(&mut s, *v);
    }
    s.push_str("}}");
    emit_line(&s);
}

pub(crate) fn emit_log(level: &str, msg: &str) {
    if !is_open() {
        return;
    }
    let mut s = event("log");
    let _ = write!(s, ",\"level\":\"{level}\",\"msg\":");
    json::write_escaped(&mut s, msg);
    s.push('}');
    emit_line(&s);
}
