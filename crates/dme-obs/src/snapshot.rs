//! Live snapshot construction: one JSON document describing the state
//! of the run *right now*.
//!
//! [`SnapshotState`] is the publisher's cross-tick memory: previous
//! counter values (for per-second rates), per-span recent-duration
//! windows drained from the stream rings (for sparklines), the
//! profile-baseline p95 table and watchdog bookkeeping. Each
//! [`SnapshotState::tick`] drains the stream, derives deltas, runs the
//! stage watchdog and serializes the whole view; [`write_atomic`]
//! publishes it with a write-to-temp + rename so a concurrent reader
//! never observes a torn file.
//!
//! # Schema (version [`SNAPSHOT_SCHEMA_VERSION`])
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "seq": 7, "ts_us": 1400321, "status": "running",
//!   "threads": [{"label": "main", "alloc_bytes": 0, "alloc_count": 0,
//!                "stack": [{"path": "flow/dosepl", "open_us": 52}]}],
//!   "stages":  [{"path": "flow", "calls": 1, "total_ns": 9, "self_ns": 2,
//!                "p95_ns": 9, "alloc_bytes": 0}],
//!   "counters": {"dosepl/swaps_accepted": 12},
//!   "counter_rates": {"dosepl/swaps_accepted": 64.2},
//!   "dosepl": {"round": 3, "swaps": 55, "accepted": 10, "accept_rate": 0.18},
//!   "ipm": {"iter": 12, "mu": 1e-7, "rp_inf": 1e-9, "rd_inf": 3e-9},
//!   "alloc": {"bytes": 0, "count": 0},
//!   "stream": {"events": 4100, "dropped": 0},
//!   "recent_ns": {"flow/dosepl/round": [51000, 48000]},
//!   "stalled": [{"thread": "main", "path": "flow/dosepl/round",
//!                "open_ms": 900.0, "baseline_p95_ms": 50.0, "mult": 8.0}]
//! }
//! ```
//!
//! `stages` comes from the flushed registry, so a thread's batched span
//! deltas become visible once its span stack drains (the outermost span
//! of a burst closes) — mid-burst, progress shows through `threads`
//! (the open stacks), `counters` and `recent_ns` instead.

use crate::json;
use crate::stream::{StreamEvent, StreamEventKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Version stamped into every snapshot as `"schema_version"`.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Recent span durations retained per path for sparkline rendering.
pub const RECENT_WINDOW: usize = 32;

/// Default open-span-vs-baseline-p95 multiple before a stage is
/// declared stalled (override with `DME_WATCHDOG_MULT`).
pub const DEFAULT_WATCHDOG_MULT: f64 = 8.0;

/// Cross-tick state owned by the snapshot publisher.
pub struct SnapshotState {
    seq: u64,
    last_ts_us: u64,
    last_counters: BTreeMap<String, u64>,
    /// Per span path, the last [`RECENT_WINDOW`] exit durations (ns).
    recent: BTreeMap<String, Vec<u64>>,
    /// Span path → baseline p95 ns from the committed profile baseline.
    baseline: BTreeMap<String, u64>,
    watchdog_mult: f64,
    /// `(thread, path)` keys already warned about while continuously
    /// stalled, so the heartbeat fires once per episode, not per tick.
    warned: BTreeSet<String>,
    events_seen: u64,
    scratch: Vec<StreamEvent>,
}

impl SnapshotState {
    /// Creates publisher state, loading the watchdog baseline from
    /// `DME_PROFILE_BASELINE` (default `results/profile_baseline.json`;
    /// a missing or unparsable file just disables the watchdog).
    pub fn new() -> Self {
        let path = std::env::var("DME_PROFILE_BASELINE")
            .unwrap_or_else(|_| "results/profile_baseline.json".to_string());
        let mult = std::env::var("DME_WATCHDOG_MULT")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|m| m.is_finite() && *m > 0.0)
            .unwrap_or(DEFAULT_WATCHDOG_MULT);
        SnapshotState {
            seq: 0,
            last_ts_us: crate::sink::ts_us(),
            last_counters: BTreeMap::new(),
            recent: BTreeMap::new(),
            baseline: load_baseline(&path),
            watchdog_mult: mult,
            warned: BTreeSet::new(),
            events_seen: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of snapshots built so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Drains the stream, runs the watchdog and builds one snapshot
    /// document with the given `status` (`running`/`final`/`panicked`).
    pub fn tick(&mut self, status: &str) -> String {
        let now_us = crate::sink::ts_us();
        self.seq += 1;

        // Pull the ring events accumulated since the last tick into the
        // per-path recent windows.
        self.scratch.clear();
        crate::stream::drain_events(&mut self.scratch);
        self.events_seen += self.scratch.len() as u64;
        for i in 0..self.scratch.len() {
            let ev = self.scratch[i];
            if ev.kind != StreamEventKind::SpanExit {
                continue;
            }
            let path = crate::stream::name_of(ev.id);
            if path.is_empty() {
                continue;
            }
            let win = self.recent.entry(path).or_default();
            if win.len() == RECENT_WINDOW {
                win.remove(0);
            }
            win.push(ev.value);
        }

        let threads = crate::stream::thread_stacks();
        let stages = crate::profile::profile_snapshot();
        let counters: BTreeMap<String, u64> = {
            let map = crate::registry()
                .counters
                .lock()
                .expect("counters poisoned");
            map.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
        };
        let dt_s = (now_us.saturating_sub(self.last_ts_us)) as f64 / 1e6;

        // Stage watchdog: any open span that has exceeded its baseline
        // p95 by the configured multiple is stalled; warn once per
        // episode via the normal diagnostics channel (stderr + sink).
        let mut stalled: Vec<(String, String, f64, f64)> = Vec::new();
        let mut still_stalled = BTreeSet::new();
        for t in &threads {
            for (path, enter_ts) in &t.open {
                let Some(&p95) = self.baseline.get(path) else {
                    continue;
                };
                if p95 == 0 {
                    continue;
                }
                let open_ns = now_us.saturating_sub(*enter_ts) as f64 * 1e3;
                let limit_ns = p95 as f64 * self.watchdog_mult;
                if open_ns > limit_ns {
                    let key = format!("{}:{}", t.label, path);
                    if self.warned.insert(key.clone()) {
                        crate::log::log(
                            crate::Level::Warn,
                            format_args!(
                                "watchdog: span {path} on {} open {:.1}s, {:.1}x its baseline \
                                 p95 ({:.1}ms)",
                                t.label,
                                open_ns / 1e9,
                                open_ns / p95 as f64,
                                p95 as f64 / 1e6,
                            ),
                        );
                    }
                    still_stalled.insert(key);
                    stalled.push((
                        t.label.clone(),
                        path.clone(),
                        open_ns / 1e6,
                        p95 as f64 / 1e6,
                    ));
                }
            }
        }
        // A span that closed (or caught up) re-arms its one-shot warn.
        self.warned.retain(|k| still_stalled.contains(k));

        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"schema_version\":{SNAPSHOT_SCHEMA_VERSION},\"seq\":{},\"ts_us\":{now_us},\
             \"status\":",
            self.seq
        );
        json::write_escaped(&mut out, status);

        // Per-thread open-span stacks with live elapsed times.
        out.push_str(",\"threads\":[");
        for (i, t) in threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json::write_escaped(&mut out, &t.label);
            let _ = write!(
                out,
                ",\"alloc_bytes\":{},\"alloc_count\":{},\"stack\":[",
                t.alloc_bytes, t.alloc_count
            );
            for (j, (path, enter_ts)) in t.open.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"path\":");
                json::write_escaped(&mut out, path);
                let _ = write!(out, ",\"open_us\":{}}}", now_us.saturating_sub(*enter_ts));
            }
            out.push_str("]}");
        }
        out.push(']');

        // Flushed-registry stage aggregates (profile-tree order).
        out.push_str(",\"stages\":[");
        for (i, n) in stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":");
            json::write_escaped(&mut out, &n.path);
            let _ = write!(
                out,
                ",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"p95_ns\":{},\"alloc_bytes\":{}}}",
                n.stats.count, n.stats.total_ns, n.self_ns, n.p95_ns, n.stats.alloc_bytes
            );
        }
        out.push(']');

        // Counter values and per-second rates over the last tick.
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"counter_rates\":{");
        let mut first = true;
        for (k, v) in &counters {
            let prev = self.last_counters.get(k).copied().unwrap_or(0);
            let delta = v.saturating_sub(prev);
            if delta == 0 || dt_s <= 0.0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            json::write_escaped(&mut out, k);
            out.push(':');
            json::write_f64(&mut out, delta as f64 / dt_s);
        }
        out.push('}');

        // Latest dosePl round and IPM iteration rows, straight from the
        // bounded record series.
        if let Some(series) = crate::record_series("dosepl_round") {
            if let Some(row) = series.rows.last() {
                out.push_str(",\"dosepl\":{");
                let mut swaps = 0.0;
                let mut accepted = 0.0;
                for (i, (k, v)) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(&mut out, k);
                    out.push(':');
                    json::write_f64(&mut out, *v);
                    match *k {
                        "swaps" => swaps = *v,
                        "accepted" => accepted = *v,
                        _ => {}
                    }
                }
                if swaps > 0.0 {
                    out.push_str(",\"accept_rate\":");
                    json::write_f64(&mut out, accepted / swaps);
                }
                out.push('}');
            }
        }
        if let Some(series) = crate::record_series("ipm_iter") {
            if let Some(row) = series.rows.last() {
                out.push_str(",\"ipm\":{");
                for (i, (k, v)) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(&mut out, k);
                    out.push(':');
                    json::write_f64(&mut out, *v);
                }
                out.push('}');
            }
        }

        // Allocator traffic: sum of the per-thread mirrors (meaningful
        // when the binary installs TrackingAllocator).
        let (ab, ac) = threads.iter().fold((0u64, 0u64), |(b, c), t| {
            (
                b.saturating_add(t.alloc_bytes),
                c.saturating_add(t.alloc_count),
            )
        });
        let _ = write!(out, ",\"alloc\":{{\"bytes\":{ab},\"count\":{ac}}}");

        let _ = write!(
            out,
            ",\"stream\":{{\"events\":{},\"dropped\":{}}}",
            self.events_seen,
            crate::stream::events_dropped()
        );

        // Recent per-path durations for sparklines.
        out.push_str(",\"recent_ns\":{");
        for (i, (path, win)) in self.recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, path);
            out.push_str(":[");
            for (j, ns) in win.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{ns}");
            }
            out.push(']');
        }
        out.push('}');

        out.push_str(",\"stalled\":[");
        for (i, (thread, path, open_ms, p95_ms)) in stalled.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"thread\":");
            json::write_escaped(&mut out, thread);
            out.push_str(",\"path\":");
            json::write_escaped(&mut out, path);
            out.push_str(",\"open_ms\":");
            json::write_f64(&mut out, *open_ms);
            out.push_str(",\"baseline_p95_ms\":");
            json::write_f64(&mut out, *p95_ms);
            out.push_str(",\"mult\":");
            json::write_f64(&mut out, self.watchdog_mult);
            out.push('}');
        }
        out.push_str("]}");

        self.last_ts_us = now_us;
        self.last_counters = counters;
        out
    }
}

impl Default for SnapshotState {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses a manifest's `profile.nodes` map into path → `p95_ns`.
/// Missing file, bad JSON or an unexpected shape all yield an empty
/// table (watchdog disabled) — the baseline is advisory, never load-
/// bearing.
fn load_baseline(path: &str) -> BTreeMap<String, u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(doc) = json::parse(&text) else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    if let Some(nodes) = doc
        .get("profile")
        .and_then(|p| p.get("nodes"))
        .and_then(|n| n.as_object())
    {
        for (path, node) in nodes {
            if let Some(p95) = node.get("p95_ns").and_then(|v| v.as_f64()) {
                out.insert(path.clone(), p95 as u64);
            }
        }
    }
    out
}

/// Writes `contents` to `path` atomically: the bytes land in
/// `<path>.tmp` first and are renamed into place, so a reader polling
/// `path` sees either the previous snapshot or the new one, never a
/// prefix.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_parses_and_carries_envelope() {
        let mut st = SnapshotState::new();
        let s1 = st.tick("running");
        let doc = json::parse(&s1).expect("snapshot is valid JSON");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_f64()),
            Some(f64::from(SNAPSHOT_SCHEMA_VERSION))
        );
        assert_eq!(doc.get("seq").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("running"));
        assert!(doc.get("threads").is_some());
        assert!(doc.get("stages").is_some());
        assert!(doc.get("counters").is_some());
        assert!(doc.get("stream").is_some());
        assert!(doc.get("stalled").is_some());
        let s2 = st.tick("final");
        let doc2 = json::parse(&s2).expect("second snapshot parses");
        assert_eq!(doc2.get("seq").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(doc2.get("status").and_then(|v| v.as_str()), Some("final"));
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("dme_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let path = path.to_str().unwrap();
        write_atomic(path, "{\"a\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "{\"a\":1}");
        write_atomic(path, "{\"b\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "{\"b\":2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_loader_tolerates_missing_file() {
        assert!(load_baseline("/nonexistent/definitely_missing.json").is_empty());
    }
}
