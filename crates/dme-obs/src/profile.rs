//! The profile tree: a hierarchical self/total view over the flat span
//! registry.
//!
//! Span paths are `/`-separated (`dosepl/round/repack`), so the
//! registry's sorted map already encodes a forest. [`profile_snapshot`]
//! materializes it: each node carries its aggregate [`SpanStats`] plus
//! derived **self** tallies — total minus the sum over direct children
//! — for both wall time and allocation. Self time is the quantity the
//! `dmeopt prof diff` gate compares run-over-run: a child getting
//! slower never blames the parent twice.
//!
//! # Invariants
//!
//! - `self_ns ≤ total_ns` per node (saturating subtraction guards
//!   clock pathologies).
//! - Σ children `total_ns` ≤ parent `total_ns` whenever spans nest as
//!   RAII guards on one thread: each child interval is contained in
//!   the parent interval and children are disjoint in time. Spans on
//!   other threads start fresh stacks, so they become roots rather
//!   than phantom children.
//! - Σ `self_ns` over **all** nodes equals Σ `total_ns` over root
//!   nodes (telescoping; property-tested in `profile_tree.rs`).
//!
//! A node whose literal parent path never completed a span (e.g. the
//! enclosing span was still open when the snapshot was taken) is
//! attached to its nearest completed ancestor, or becomes a root.

use crate::registry::SpanStats;
use std::collections::BTreeMap;

/// One node of the profile tree (see module docs).
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Full `/`-separated span path.
    pub path: String,
    /// Index (into the snapshot vector) of the nearest recorded
    /// ancestor, or `None` for roots.
    pub parent: Option<usize>,
    /// Aggregate stats straight from the registry.
    pub stats: SpanStats,
    /// Wall time not accounted to any recorded child, ns.
    pub self_ns: u64,
    /// Allocated bytes not accounted to any recorded child.
    pub self_alloc_bytes: u64,
    /// Allocation count not accounted to any recorded child.
    pub self_alloc_count: u64,
    /// Median per-execution duration (power-of-two resolution), ns.
    pub p50_ns: u64,
    /// 95th-percentile per-execution duration, ns.
    pub p95_ns: u64,
}

/// Builds the profile tree from the current span registry, sorted by
/// path (parents therefore always precede their descendants).
pub fn profile_snapshot() -> Vec<ProfileNode> {
    crate::span::flush_current_thread();
    let spans = crate::registry()
        .spans
        .lock()
        .expect("spans poisoned")
        .clone();
    build(&spans)
}

/// Tree construction from any path → stats map (exposed for tests and
/// for rebuilding trees parsed back out of manifests).
pub fn build(spans: &BTreeMap<String, SpanStats>) -> Vec<ProfileNode> {
    let index: BTreeMap<&str, usize> = spans
        .keys()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();
    let parent_of = |path: &str| -> Option<usize> {
        let mut p = path;
        while let Some(pos) = p.rfind('/') {
            p = &p[..pos];
            if let Some(&i) = index.get(p) {
                return Some(i);
            }
        }
        None
    };
    let mut nodes: Vec<ProfileNode> = spans
        .iter()
        .map(|(path, st)| ProfileNode {
            path: path.clone(),
            parent: parent_of(path),
            stats: *st,
            self_ns: st.total_ns,
            self_alloc_bytes: st.alloc_bytes,
            self_alloc_count: st.alloc_count,
            p50_ns: st.dur_hist.p50(),
            p95_ns: st.dur_hist.p95(),
        })
        .collect();
    for i in 0..nodes.len() {
        if let Some(pi) = nodes[i].parent {
            let (t, b, c) = (
                nodes[i].stats.total_ns,
                nodes[i].stats.alloc_bytes,
                nodes[i].stats.alloc_count,
            );
            let p = &mut nodes[pi];
            p.self_ns = p.self_ns.saturating_sub(t);
            p.self_alloc_bytes = p.self_alloc_bytes.saturating_sub(b);
            p.self_alloc_count = p.self_alloc_count.saturating_sub(c);
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(total_ns: u64, alloc_bytes: u64) -> SpanStats {
        SpanStats {
            count: 1,
            total_ns,
            max_ns: total_ns,
            alloc_bytes,
            alloc_count: alloc_bytes / 8,
            ..SpanStats::default()
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), stats(100, 800));
        m.insert("a/b".to_string(), stats(60, 320));
        m.insert("a/b/c".to_string(), stats(10, 80));
        m.insert("d".to_string(), stats(5, 0));
        let nodes = build(&m);
        let by_path: BTreeMap<&str, &ProfileNode> =
            nodes.iter().map(|n| (n.path.as_str(), n)).collect();
        assert_eq!(by_path["a"].self_ns, 40);
        assert_eq!(by_path["a"].self_alloc_bytes, 480);
        assert_eq!(by_path["a/b"].self_ns, 50);
        assert_eq!(by_path["a/b/c"].self_ns, 10);
        assert_eq!(by_path["d"].self_ns, 5);
        assert_eq!(by_path["a"].parent, None);
        assert_eq!(by_path["a/b/c"].parent.map(|i| nodes[i].path.as_str()), {
            Some("a/b")
        });
        // Telescoping: Σ self == Σ root totals.
        let self_sum: u64 = nodes.iter().map(|n| n.self_ns).sum();
        let root_sum: u64 = nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .map(|n| n.stats.total_ns)
            .sum();
        assert_eq!(self_sum, root_sum);
    }

    #[test]
    fn missing_parent_attaches_to_nearest_ancestor() {
        let mut m = BTreeMap::new();
        m.insert("flow".to_string(), stats(100, 0));
        // "flow/solve" never completed; its child still nests under flow.
        m.insert("flow/solve/factor".to_string(), stats(30, 0));
        let nodes = build(&m);
        let child = nodes.iter().find(|n| n.path.ends_with("factor")).unwrap();
        assert_eq!(child.parent.map(|i| nodes[i].path.as_str()), Some("flow"));
        let flow = nodes.iter().find(|n| n.path == "flow").unwrap();
        assert_eq!(flow.self_ns, 70);
    }
}
