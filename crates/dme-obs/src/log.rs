//! Leveled diagnostics logging and the `report!` program-output macro.
//!
//! Diagnostics (`error!`/`warn!`/`info!`/`debug!`) go to **stderr**,
//! filtered by `DME_LOG` (default `warn`, so runs are quiet unless
//! something is wrong). Program deliverables — result tables and the
//! machine-parsed `WORKLINE`/`BENCHLINE`/`INFOLINE` lines — use
//! [`report!`](crate::report), which always prints to **stdout**.
//! Both are mirrored into the JSONL sink when one is open, so a trace
//! file is a complete account of the run.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of a diagnostic line, in decreasing order of urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The run cannot produce its result.
    Error = 0,
    /// Suspicious but survivable (the default visibility threshold).
    Warn = 1,
    /// Progress and configuration notes.
    Info = 2,
    /// High-volume inner-loop detail.
    Debug = 3,
}

impl Level {
    /// Lower-case name as it appears in `DME_LOG` and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "e" | "0" => Some(Level::Error),
            "warn" | "warning" | "w" | "1" => Some(Level::Warn),
            "info" | "i" | "2" => Some(Level::Info),
            "debug" | "d" | "3" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 255 = not yet initialized from the environment.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(255);

fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        255 => {
            let lvl = std::env::var("DME_LOG")
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Warn);
            MAX_LEVEL.store(lvl as u8, Ordering::Relaxed);
            lvl
        }
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the `DME_LOG` threshold programmatically (CLI `-v`/`-q`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a diagnostic at `level` would currently be printed.
pub fn level_enabled(level: Level) -> bool {
    level <= max_level()
}

/// Backend for the logging macros; prefer the macros.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    let printed = level_enabled(level);
    if !printed && !crate::sink_open() {
        return;
    }
    let msg = args.to_string();
    if printed {
        eprintln!("[dme {}] {msg}", level.name());
    }
    crate::sink::emit_log(level.name(), &msg);
}

/// Backend for [`report!`](crate::report); prefer the macro.
pub fn report(args: std::fmt::Arguments<'_>) {
    let msg = args.to_string();
    println!("{msg}");
    crate::sink::emit_log("report", &msg);
}

/// Logs an unrecoverable problem to stderr (always visible).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log::log($crate::Level::Error, format_args!($($arg)*)) };
}

/// Logs a survivable anomaly to stderr (visible by default).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log::log($crate::Level::Warn, format_args!($($arg)*)) };
}

/// Logs progress detail to stderr (hidden unless `DME_LOG=info`).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log::log($crate::Level::Info, format_args!($($arg)*)) };
}

/// Logs inner-loop detail to stderr (hidden unless `DME_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log::log($crate::Level::Debug, format_args!($($arg)*)) };
}

/// Prints program output (tables, `WORKLINE`/`BENCHLINE` records) to
/// stdout unconditionally, mirroring it into the trace when open.
#[macro_export]
macro_rules! report {
    () => { $crate::log::report(format_args!("")) };
    ($($arg:tt)*) => { $crate::log::report(format_args!($($arg)*)) };
}
