//! Vendored offline observability for the DME workspace.
//!
//! This crate provides the four primitives the DMopt/dosePl flow
//! reports through, with **zero external dependencies** (the build
//! environment has no crates.io access):
//!
//! - **Spans** ([`span`]): RAII wall-clock timers that nest into
//!   `/`-separated hierarchical paths (`flow/dmopt/solve`).
//! - **Counters** ([`counter_add`]): monotonic `u64` tallies.
//! - **Histograms** ([`histogram_record`]): fixed power-of-two-bucket
//!   distributions (retime cone sizes, CG iteration counts).
//! - **Records** ([`record`]): bounded per-kind series of structured
//!   rows (one row per IPM Newton iteration).
//!
//! On top of the spans sits a self-profiling layer: per-span
//! allocation attribution (when the embedding binary installs
//! [`TrackingAllocator`] as its global allocator) and a hierarchical
//! [`profile`] tree — calls, total/self wall time, p50/p95, bytes —
//! emitted as the manifest's `"profile"` section (schema v3).
//!
//! Everything funnels into a thread-safe in-memory registry that can
//! be exported as a JSON run manifest ([`manifest_json`],
//! [`write_report`]) or rendered as a human-readable summary
//! ([`summary_table`]). When a JSONL sink is open, each event is also
//! streamed to disk as it happens.
//!
//! # Cost model
//!
//! Tracing is **off by default**. Every public entry point starts with
//! [`enabled`] — one lazily-initialized relaxed atomic load — and a
//! disabled [`Span`] is an `Option::None` guard: no clock read, no
//! thread-local access, no heap allocation (enforced by the
//! `no_alloc` integration test).
//!
//! # Environment variables
//!
//! | Variable         | Effect                                             |
//! |------------------|----------------------------------------------------|
//! | `DME_TRACE=1`    | Enable telemetry collection (registry only).       |
//! | `DME_TRACE_JSON=<path>` | Enable telemetry and stream JSONL events to `<path>`. |
//! | `DME_LOG=<level>`| stderr diagnostics threshold: `error`, `warn` (default), `info`, `debug`. |
//! | `DME_STREAM=1`   | Arm the live event stream ([`stream`]); implies telemetry. |
//! | `DME_SNAPSHOT_MS=<ms>` | Snapshot publisher interval; embedding binaries start [`publisher`] with it. |
//! | `DME_SNAPSHOT_PATH=<path>` | Snapshot destination (default `snapshot.json`). |
//! | `DME_WATCHDOG_MULT=<x>` | Stalled-stage threshold as a multiple of baseline p95 (default 8). |
//! | `DME_PROFILE_BASELINE=<path>` | Watchdog baseline manifest (default `results/profile_baseline.json`). |

#![deny(missing_docs)]

mod alloc;
pub mod catalog;
pub mod json;
pub mod log;
mod manifest;
pub mod profile;
pub mod publisher;
mod registry;
pub(crate) mod sink;
pub mod snapshot;
mod span;
pub mod stream;

pub use alloc::{alloc_tracking, allocator_installed, thread_alloc_totals, TrackingAllocator};
pub use log::{level_enabled, set_max_level, Level};
pub use manifest::{
    manifest_json, qor_values, report_path, set_meta_bool, set_meta_num, set_meta_str, set_qor,
    set_report_path, summary_table, write_report, MetaValue, MANIFEST_SCHEMA_VERSION,
};
pub use profile::{profile_snapshot, ProfileNode};
pub use registry::{Histogram, RecordSeries, SpanStats, HISTOGRAM_BUCKETS, RECORD_CAP};
pub use sink::TRACE_SCHEMA_VERSION;
pub use span::{depth, Span};
pub use stream::{set_stream_armed, stream_armed};

use registry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Once, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn env_truthy(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
    })
}

/// Applies `DME_TRACE` / `DME_TRACE_JSON` exactly once per process.
/// Called from [`enabled`] so binaries that never mention this crate's
/// setup functions (e.g. tests run under `DME_TRACE=1`) still honor
/// the environment.
fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if env_truthy("DME_TRACE") {
            ENABLED.store(true, Ordering::Relaxed);
        }
        if let Ok(path) = std::env::var("DME_TRACE_JSON") {
            if !path.trim().is_empty() {
                match sink::set_path(&path) {
                    Ok(()) => ENABLED.store(true, Ordering::Relaxed),
                    Err(e) => eprintln!("[dme error] DME_TRACE_JSON={path}: {e}"),
                }
            }
        }
        // DME_STREAM=1 arms the live event stream (implies telemetry);
        // DME_SNAPSHOT_MS additionally starts the snapshot publisher,
        // which the embedding binary drives via the publisher module.
        if env_truthy("DME_STREAM") || env_truthy("DME_SNAPSHOT_MS") {
            ENABLED.store(true, Ordering::Relaxed);
            stream::set_stream_armed(true);
        }
        if ENABLED.load(Ordering::Relaxed) {
            alloc::set_tracking(true);
        }
    });
}

/// Whether telemetry collection is on. This is the hot-path gate: a
/// `Once` fast-path check plus one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ensure_env_init();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off programmatically (overrides
/// the environment; used by `--trace`/`--report` CLI flags).
pub fn set_enabled(on: bool) {
    ensure_env_init();
    ENABLED.store(on, Ordering::Relaxed);
    alloc::set_tracking(on);
}

/// Opens (or replaces) the JSONL event sink at `path` and enables
/// telemetry.
///
/// # Errors
///
/// Propagates the filesystem error if the file cannot be created.
pub fn set_trace_path(path: &str) -> std::io::Result<()> {
    ensure_env_init();
    sink::set_path(path)?;
    ENABLED.store(true, Ordering::Relaxed);
    alloc::set_tracking(true);
    Ok(())
}

/// Closes the JSONL sink (flushing it); telemetry collection stays in
/// whatever state it was.
pub fn close_trace() {
    sink::close();
}

/// Whether a JSONL sink is currently open.
pub fn sink_open() -> bool {
    sink::is_open()
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Opens a timing span named `name`, nested under any span already
/// open on this thread. Returns an inert guard when tracing is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::enter(name)
    } else {
        Span::disabled()
    }
}

/// Adds `delta` to the monotonic counter `name` (no-op when tracing is
/// off).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        registry().counter_add(name, delta);
        if stream::stream_armed() {
            stream::on_counter(name, delta);
        }
    }
}

/// Records `value` into the power-of-two histogram `name` (no-op when
/// tracing is off).
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if enabled() {
        registry().histogram_record(name, value);
    }
}

/// Appends one structured row to the record series `kind` (no-op when
/// tracing is off). Series are bounded at [`RECORD_CAP`] rows; the
/// overflow count is reported, never silently discarded.
#[inline]
pub fn record(kind: &'static str, fields: &[(&'static str, f64)]) {
    if enabled() {
        registry().record(kind, fields);
        sink::emit_record(kind, fields);
        if stream::stream_armed() {
            stream::on_record(kind, fields);
        }
    }
}

/// Current value of counter `name` (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .counters
        .lock()
        .expect("counters poisoned")
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Aggregate stats for the span path `path`, if it ever completed.
pub fn span_stats(path: &str) -> Option<SpanStats> {
    span::flush_current_thread();
    registry()
        .spans
        .lock()
        .expect("spans poisoned")
        .get(path)
        .copied()
}

/// Snapshot of histogram `name`, if any value was recorded.
pub fn histogram_snapshot(name: &str) -> Option<Histogram> {
    registry()
        .histograms
        .lock()
        .expect("histograms poisoned")
        .get(name)
        .cloned()
}

/// Snapshot of the record series `kind`, if any row was emitted.
pub fn record_series(kind: &str) -> Option<RecordSeries> {
    registry()
        .records
        .lock()
        .expect("records poisoned")
        .get(kind)
        .cloned()
}

/// Clears the registry and manifest metadata (telemetry enablement and
/// the sink are untouched). Intended for tests and for separating
/// phases within one process.
pub fn reset() {
    // Flush first so this thread's batched span deltas are discarded by
    // the clear below rather than resurfacing at the next flush.
    span::flush_current_thread();
    registry().reset();
    manifest::reset_meta();
}

/// Installs a process-wide panic hook (idempotent) so a crashing run
/// still leaves usable telemetry: the panic message is appended to the
/// JSONL trace, the sink is flushed and closed, and — when a report path
/// was registered via [`set_report_path`] — a manifest stub carrying
/// everything collected up to the crash is written with
/// `meta.status = "panicked"`. The previously installed hook (normally
/// the default backtrace printer) still runs afterwards.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if enabled() {
                // A panic mid-span-stack means this thread's batched
                // span deltas never hit the registry (they flush when
                // the stack drains). Publish them now so the panicked
                // manifest and snapshot carry exact span totals.
                span::flush_current_thread();
                sink::emit_log("error", &format!("panic: {info}"));
                manifest::set_meta_str("status", "panicked");
                if let Some(path) = manifest::report_path() {
                    if let Err(e) = manifest::write_report(&path) {
                        eprintln!("[dme error] writing panic manifest {path}: {e}");
                    }
                }
                publisher::publish_panic();
            }
            sink::close();
            prev(info);
        }));
    });
}
