//! The live event stream: per-thread lock-free rings feeding the
//! snapshot publisher.
//!
//! The registry ([`crate::registry`]) answers "what happened over the
//! whole run"; this module answers "what is happening *right now*".
//! When the stream is **armed**, every span exit, counter bump and
//! structured record is mirrored — in addition to its normal registry
//! path — into a fixed-capacity single-producer/single-consumer ring
//! owned by the emitting thread. The single consumer is the snapshot
//! publisher ([`crate::publisher`]), which drains all rings on every
//! tick. Rings **overwrite oldest**: a stalled or absent consumer never
//! blocks or slows a producer; it just loses the oldest events (the
//! drop count is reported, never hidden).
//!
//! Each thread ring additionally exposes a racy *stack view* — the ids
//! and enter timestamps of the thread's currently open spans (up to
//! [`STACK_VIEW_DEPTH`]) plus a mirror of its allocation tallies,
//! refreshed at span boundaries. The publisher reads these with plain
//! atomic loads to render the live phase stack and to drive the stage
//! watchdog; a torn read can at worst show a one-tick-stale frame.
//!
//! # Cost model
//!
//! Disarmed, every hook is one relaxed atomic load and a branch — no
//! thread-local access, no allocation (covered by the `no_alloc`
//! integration test). Armed, a span exit costs ~5 relaxed stores plus
//! one release store into this thread's ring; there are no locks and no
//! CAS loops on the hot path. Name strings are interned once into a
//! global table (`u32` ids); the per-event payload is plain words, so
//! torn slots on the reader side are detected by index re-checks and
//! discarded rather than misread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread ring (power of two). At the dosePl
/// candidate-loop rate (~30k span pairs/s at 12k cells) this holds the
/// last ~100 ms of events between 200 ms publisher ticks per thread;
/// older events are overwritten and counted as dropped.
pub const STREAM_RING_CAP: usize = 4096;

/// Open spans exposed per thread in the live stack view; deeper spans
/// still stream exit events, they just don't appear in the stack.
pub const STACK_VIEW_DEPTH: usize = 16;

/// What kind of event a drained slot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEventKind {
    /// A span closed; `value` is its duration in ns.
    SpanExit,
    /// A counter moved; `value` is the delta.
    Counter,
    /// A structured record was emitted; `value` is the first field's
    /// `f64` bit pattern (the registry keeps the full row).
    Record,
}

/// One event drained out of a thread ring.
#[derive(Debug, Clone, Copy)]
pub struct StreamEvent {
    /// Event kind.
    pub kind: StreamEventKind,
    /// Interned name id; resolve with [`name_of`].
    pub id: u32,
    /// Kind-dependent payload (see [`StreamEventKind`]).
    pub value: u64,
    /// Process-relative microsecond timestamp ([`crate::sink`] epoch).
    pub ts_us: u64,
}

const KIND_SPAN: u8 = 1;
const KIND_COUNTER: u8 = 2;
const KIND_RECORD: u8 = 3;

/// One ring slot. All fields are individually atomic and written with
/// relaxed stores by the owning thread; the publisher detects slots
/// overwritten mid-read by re-checking the write position afterwards.
struct Slot {
    kind: std::sync::atomic::AtomicU8,
    id: AtomicU32,
    value: AtomicU64,
    ts_us: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            kind: std::sync::atomic::AtomicU8::new(0),
            id: AtomicU32::new(0),
            value: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
        }
    }
}

/// Per-thread stream state shared with the publisher.
pub(crate) struct ThreadRing {
    /// Monotonic event count; slot `i` lives at `i % STREAM_RING_CAP`.
    wpos: AtomicU64,
    slots: Box<[Slot]>,
    /// Publisher-side read position (only the publisher writes this).
    rpos: AtomicU64,
    /// Events lost to overwrite, accumulated at drain time.
    dropped: AtomicU64,
    /// Racy open-span stack view: interned path ids + enter timestamps.
    stack_ids: [AtomicU32; STACK_VIEW_DEPTH],
    stack_ts_us: [AtomicU64; STACK_VIEW_DEPTH],
    stack_depth: AtomicUsize,
    /// Allocation tally mirror, refreshed at span exits.
    alloc_bytes: AtomicU64,
    alloc_count: AtomicU64,
    /// Short label for display (`main` or `t<n>`).
    label: String,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U32: AtomicU32 = AtomicU32::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

impl ThreadRing {
    fn new(label: String) -> Self {
        ThreadRing {
            wpos: AtomicU64::new(0),
            slots: (0..STREAM_RING_CAP).map(|_| Slot::new()).collect(),
            rpos: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            stack_ids: [ZERO_U32; STACK_VIEW_DEPTH],
            stack_ts_us: [ZERO_U64; STACK_VIEW_DEPTH],
            stack_depth: AtomicUsize::new(0),
            alloc_bytes: AtomicU64::new(0),
            alloc_count: AtomicU64::new(0),
            label,
        }
    }

    /// Producer-side push (owning thread only).
    fn push(&self, kind: u8, id: u32, value: u64) {
        let w = self.wpos.load(Ordering::Relaxed);
        let slot = &self.slots[(w as usize) & (STREAM_RING_CAP - 1)];
        slot.kind.store(kind, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.ts_us.store(crate::sink::ts_us(), Ordering::Relaxed);
        // Publish the slot: readers acquire `wpos` before touching it.
        self.wpos.store(w + 1, Ordering::Release);
    }

    /// Consumer-side drain (publisher only). Appends every event that
    /// is provably untorn to `out` and returns how many were lost.
    fn drain(&self, out: &mut Vec<StreamEvent>) -> u64 {
        let r = self.rpos.load(Ordering::Relaxed);
        let w1 = self.wpos.load(Ordering::Acquire);
        let start = r.max(w1.saturating_sub(STREAM_RING_CAP as u64));
        let mut lost = start - r;
        let mut staged: Vec<(u64, StreamEvent)> = Vec::with_capacity((w1 - start) as usize);
        for i in start..w1 {
            let slot = &self.slots[(i as usize) & (STREAM_RING_CAP - 1)];
            let kind = match slot.kind.load(Ordering::Relaxed) {
                KIND_SPAN => StreamEventKind::SpanExit,
                KIND_COUNTER => StreamEventKind::Counter,
                KIND_RECORD => StreamEventKind::Record,
                _ => continue, // never-written slot (ring not yet full)
            };
            staged.push((
                i,
                StreamEvent {
                    kind,
                    id: slot.id.load(Ordering::Relaxed),
                    value: slot.value.load(Ordering::Relaxed),
                    ts_us: slot.ts_us.load(Ordering::Relaxed),
                },
            ));
        }
        // Any slot the producer may have been overwriting while we read
        // (index ≤ w2 − CAP, where w2 is the write position *after* the
        // copy) is discarded: its fields may mix two events.
        let w2 = self.wpos.load(Ordering::Acquire);
        let valid_from = w2.saturating_sub(STREAM_RING_CAP as u64 - 1);
        for (i, ev) in staged {
            if i >= valid_from {
                out.push(ev);
            } else {
                lost += 1;
            }
        }
        self.rpos.store(w1, Ordering::Relaxed);
        if lost > 0 {
            self.dropped.fetch_add(lost, Ordering::Relaxed);
        }
        lost
    }
}

// SAFETY: every field is either immutable after construction or atomic.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

/// A snapshot of one thread's open-span stack, read racily.
#[derive(Debug, Clone)]
pub struct ThreadStackView {
    /// Display label of the thread (`main`, `t2`, ...).
    pub label: String,
    /// Open spans, outermost first: `(path, enter ts_us)`.
    pub open: Vec<(String, u64)>,
    /// Allocation tallies mirrored at the last span boundary.
    pub alloc_bytes: u64,
    /// Allocation count over the same window.
    pub alloc_count: u64,
}

/// Process-wide stream state: the armed flag, the name interner and the
/// hub of registered thread rings.
struct Hub {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// id → name; id 0 is reserved ("unassigned").
    names: Mutex<Vec<String>>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        rings: Mutex::new(Vec::new()),
        names: Mutex::new(vec![String::new()]),
    })
}

struct StreamTls {
    ring: Arc<ThreadRing>,
    /// `&'static str` pointer → interned id cache so counter/record
    /// mirroring doesn't take the interner lock per event. Linear scan:
    /// the process has a few dozen metric names.
    names: Vec<(*const u8, usize, u32)>,
}

thread_local! {
    static STREAM_TLS: RefCell<Option<StreamTls>> = const { RefCell::new(None) };
}

/// Whether the live stream is armed (one relaxed load — the hot-path
/// gate for every mirror hook).
#[inline]
pub fn stream_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms or disarms the live stream. Arming does not by itself enable
/// telemetry — the mirror hooks sit behind [`crate::enabled`] — so the
/// publisher front ends enable both.
pub fn set_stream_armed(on: bool) {
    ARMED.store(on, Ordering::Relaxed);
}

/// Interns `name`, returning its stable nonzero id.
pub(crate) fn intern_name(name: &str) -> u32 {
    let _pause = crate::alloc::pause();
    let mut names = hub().names.lock().expect("stream names poisoned");
    if let Some(i) = names.iter().position(|n| n == name) {
        return u32::try_from(i).unwrap_or(0);
    }
    let id = u32::try_from(names.len()).unwrap_or(0);
    names.push(name.to_string());
    id
}

/// Resolves an interned id back to its name (empty when unknown).
pub fn name_of(id: u32) -> String {
    let names = hub().names.lock().expect("stream names poisoned");
    names.get(id as usize).cloned().unwrap_or_default()
}

/// Runs `f` with this thread's ring (and name cache), creating and
/// registering the ring on first use. The creation path allocates under
/// an alloc pause so instrumentation is never charged to user spans.
fn with_tls<R>(f: impl FnOnce(&mut StreamTls) -> R) -> Option<R> {
    STREAM_TLS
        .try_with(|t| {
            let mut t = t.try_borrow_mut().ok()?;
            let tls = match t.as_mut() {
                Some(tls) => tls,
                None => {
                    let _pause = crate::alloc::pause();
                    let hub = hub();
                    let mut rings = hub.rings.lock().expect("stream rings poisoned");
                    let label = if rings.is_empty() {
                        "main".to_string()
                    } else {
                        format!("t{}", rings.len() + 1)
                    };
                    let ring = Arc::new(ThreadRing::new(label));
                    rings.push(Arc::clone(&ring));
                    drop(rings);
                    t.get_or_insert(StreamTls {
                        ring,
                        names: Vec::with_capacity(64),
                    })
                }
            };
            Some(f(tls))
        })
        .ok()
        .flatten()
}

/// Cached interning of a `&'static str` metric name on this thread.
fn cached_id(tls: &mut StreamTls, name: &'static str) -> u32 {
    let key = (name.as_ptr(), name.len());
    for &(p, l, id) in &tls.names {
        if p == key.0 && l == key.1 {
            return id;
        }
    }
    let id = intern_name(name);
    let _pause = crate::alloc::pause();
    tls.names.push((key.0, key.1, id));
    id
}

/// Span-enter hook: publishes the span into this thread's stack view.
/// `id` is the span path's interned id, `depth` its 1-based depth.
pub(crate) fn on_span_enter(id: u32, depth: usize) {
    with_tls(|tls| {
        if depth <= STACK_VIEW_DEPTH {
            let ring = &tls.ring;
            ring.stack_ids[depth - 1].store(id, Ordering::Relaxed);
            ring.stack_ts_us[depth - 1].store(crate::sink::ts_us(), Ordering::Relaxed);
        }
        tls.ring.stack_depth.store(depth, Ordering::Relaxed);
    });
}

/// Span-exit hook: pops the stack view, mirrors the exit event and
/// refreshes the allocation tally mirror.
pub(crate) fn on_span_exit(id: u32, depth: usize, dur_ns: u64) {
    let (bytes, count) = crate::alloc::thread_alloc_totals();
    with_tls(|tls| {
        let ring = &tls.ring;
        ring.stack_depth.store(depth - 1, Ordering::Relaxed);
        ring.alloc_bytes.store(bytes, Ordering::Relaxed);
        ring.alloc_count.store(count, Ordering::Relaxed);
        ring.push(KIND_SPAN, id, dur_ns);
    });
}

/// Counter hook: mirrors one counter bump.
pub(crate) fn on_counter(name: &'static str, delta: u64) {
    with_tls(|tls| {
        let id = cached_id(tls, name);
        tls.ring.push(KIND_COUNTER, id, delta);
    });
}

/// Record hook: mirrors a structured record as its first field's value
/// (the registry series keeps the full row).
pub(crate) fn on_record(kind: &'static str, fields: &[(&'static str, f64)]) {
    with_tls(|tls| {
        let id = cached_id(tls, kind);
        let v = fields.first().map_or(0.0, |&(_, v)| v);
        tls.ring.push(KIND_RECORD, id, v.to_bits());
    });
}

/// Drains every registered thread ring into `out`; returns the number
/// of events lost to overwrite since the last drain.
pub fn drain_events(out: &mut Vec<StreamEvent>) -> u64 {
    let rings: Vec<Arc<ThreadRing>> = {
        let rings = hub().rings.lock().expect("stream rings poisoned");
        rings.clone()
    };
    let mut lost = 0;
    for ring in rings {
        lost += ring.drain(out);
    }
    lost
}

/// Total events ever dropped to overwrite, across all rings.
pub fn events_dropped() -> u64 {
    let rings = hub().rings.lock().expect("stream rings poisoned");
    rings
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Racy snapshot of every thread's open-span stack and allocation
/// mirror. Threads that never streamed an event are absent.
pub fn thread_stacks() -> Vec<ThreadStackView> {
    let rings: Vec<Arc<ThreadRing>> = {
        let rings = hub().rings.lock().expect("stream rings poisoned");
        rings.clone()
    };
    rings
        .iter()
        .map(|ring| {
            let depth = ring
                .stack_depth
                .load(Ordering::Relaxed)
                .min(STACK_VIEW_DEPTH);
            let open = (0..depth)
                .map(|i| {
                    let id = ring.stack_ids[i].load(Ordering::Relaxed);
                    let ts = ring.stack_ts_us[i].load(Ordering::Relaxed);
                    (name_of(id), ts)
                })
                .filter(|(p, _)| !p.is_empty())
                .collect();
            ThreadStackView {
                label: ring.label.clone(),
                open,
                alloc_bytes: ring.alloc_bytes.load(Ordering::Relaxed),
                alloc_count: ring.alloc_count.load(Ordering::Relaxed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_reports_drops() {
        let ring = ThreadRing::new("test".into());
        let n = (STREAM_RING_CAP + 100) as u64;
        for i in 0..n {
            ring.push(KIND_COUNTER, 1, i);
        }
        let mut out = Vec::new();
        let lost = ring.drain(&mut out);
        // The earliest events were overwritten; the survivors are the
        // most recent ≤ CAP and arrive in order.
        assert!(lost >= 100, "lost {lost}");
        assert!(out.len() <= STREAM_RING_CAP);
        assert_eq!(out.last().expect("events").value, n - 1);
        for w in out.windows(2) {
            assert!(w[1].value == w[0].value + 1, "order");
        }
        // A second drain with no new events is empty.
        let mut again = Vec::new();
        assert_eq!(ring.drain(&mut again), 0);
        assert!(again.is_empty());
    }

    #[test]
    fn interner_is_stable_and_dense() {
        let a = intern_name("stream_test/a");
        let b = intern_name("stream_test/b");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(intern_name("stream_test/a"), a);
        assert_eq!(name_of(a), "stream_test/a");
        assert_eq!(name_of(u32::MAX), "");
    }

    #[test]
    fn hooks_are_inert_when_reading_empty_state() {
        // No armed stream in unit tests: drains and stack views still
        // answer without panicking.
        let mut out = Vec::new();
        drain_events(&mut out);
        let _ = thread_stacks();
        let _ = events_dropped();
    }
}
