//! Minimal JSON writer and reader.
//!
//! The build environment has no access to crates.io, so `serde_json`
//! cannot be fetched; this module implements exactly what the tracing
//! sink and the run manifest need: string escaping, float formatting
//! that round-trips, and a small recursive-descent parser used by the
//! schema tests (and by downstream tooling that wants to validate a
//! trace without python).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use [`BTreeMap`] so iteration order is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object map if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite float (or `null` for NaN/inf, which JSON cannot
/// represent) using shortest-round-trip formatting.
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's `{}` for f64 is shortest-round-trip; always include
        // enough to re-parse exactly.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Parses one JSON document, requiring it to span the whole input.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not needed by our own
                        // writer (it never escapes above U+001F); map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f µm²";
        let mut s = String::new();
        write_escaped(&mut s, nasty);
        assert_eq!(parse(&s).unwrap(), Value::String(nasty.to_string()));
    }

    #[test]
    fn floats_round_trip() {
        for x in [
            0.0,
            -1.5,
            1e-300,
            std::f64::consts::PI,
            2.2250738585072014e-308,
        ] {
            let mut s = String::new();
            write_f64(&mut s, x);
            assert_eq!(parse(&s).unwrap().as_f64().unwrap().to_bits(), x.to_bits());
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, {"b": true, "c": null}], "d": "x"}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Value::Bool(true)));
        assert_eq!(arr[2].get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
