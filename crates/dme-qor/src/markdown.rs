//! Markdown rendering of a [`DiffReport`].
//!
//! One self-contained document: a verdict headline, a table of every
//! metric that moved (regressions first), and a collapsed count of the
//! stable remainder. Written for CI job summaries and PR comments.

use crate::diff::{DiffReport, Verdict};
use std::fmt::Write as _;

/// Compact, stable number formatting for report tables: up to six
/// significant-looking decimals with trailing zeros trimmed.
fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        let s = format!("{x:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

fn opt(x: Option<f64>) -> String {
    x.map_or_else(|| "—".to_string(), fmt_num)
}

/// Renders the diff as a markdown document.
pub fn diff_markdown(report: &DiffReport) -> String {
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "# QoR diff: {} vs {} (baseline n={})",
        report.run_label, report.baseline_label, report.baseline_n
    );
    out.push('\n');

    let regressed = report.count(Verdict::Regressed);
    let improved = report.count(Verdict::Improved);
    let stable = report.count(Verdict::Stable);
    let new = report.count(Verdict::New);
    let missing = report.count(Verdict::Missing);
    let headline = if regressed > 0 { "REGRESSED" } else { "OK" };
    let _ = writeln!(
        out,
        "**Verdict: {headline}** — {regressed} regressed, {improved} improved, \
         {stable} stable, {new} new, {missing} missing"
    );
    out.push('\n');

    let moved: Vec<_> = report
        .verdicts
        .iter()
        .filter(|m| m.verdict != Verdict::Stable)
        .collect();
    if !moved.is_empty() {
        out.push_str("| metric | run | baseline median | MAD | worse-by | threshold | verdict |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---|\n");
        for m in &moved {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                m.name,
                opt(m.value),
                opt(m.median),
                opt(m.mad),
                fmt_num(m.worse_by),
                fmt_num(m.threshold),
                m.verdict.name()
            );
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{stable} metric(s) stable within noise thresholds.");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff_records, DiffConfig};
    use crate::record::QorRecord;

    /// Golden test: the markdown layout is part of the tool's contract
    /// (CI annotations parse nothing, humans read everything).
    #[test]
    fn golden_diff_markdown() {
        let mk = |leakage: f64, wns: f64| {
            let mut r = QorRecord {
                git_sha: "base123".into(),
                bin: "dmeopt".into(),
                command: "flow".into(),
                profile: "tiny".into(),
                ..QorRecord::default()
            };
            r.qor.insert("flow/final_leakage_uw".into(), leakage);
            r.qor.insert("flow/wns_ns".into(), wns);
            r
        };
        let baseline = vec![mk(100.0, 0.5), mk(102.0, 0.5), mk(98.0, 0.5)];
        let mut run = mk(120.0, 0.5);
        run.git_sha = "run456".into();
        let mut report = diff_records(&run, &baseline, &DiffConfig::default());
        report.baseline_label = "results/qor_history.jsonl".into();

        let md = diff_markdown(&report);
        let expected = "\
# QoR diff: run456 dmeopt/flow (tiny) vs results/qor_history.jsonl (baseline n=3)

**Verdict: REGRESSED** — 1 regressed, 0 improved, 1 stable, 0 new, 0 missing

| metric | run | baseline median | MAD | worse-by | threshold | verdict |
|---|---:|---:|---:|---:|---:|---|
| qor/flow/final_leakage_uw | 120 | 100 | 2 | 20 | 6 | regressed |

1 metric(s) stable within noise thresholds.
";
        assert_eq!(md, expected);
    }

    #[test]
    fn ok_headline_when_nothing_moved() {
        let mut r = QorRecord::default();
        r.qor.insert("m".into(), 1.0);
        let report = diff_records(&r.clone(), &[r], &DiffConfig::default());
        let md = diff_markdown(&report);
        assert!(md.contains("**Verdict: OK**"), "{md}");
    }
}
