//! QoR regression sentinel for the DME workspace.
//!
//! `dme-obs` (PR 2) gave every run a manifest and a JSONL trace; this
//! crate is the layer that *consumes* them. The paper's contribution is
//! measured entirely in deltas — leakage reduction at iso-delay,
//! timing-yield improvement over the baseline placement (Tables 2–8) —
//! so a QoR regression that ships silently defeats the reproduction.
//! `dme-qor` turns per-run telemetry into a run-over-run record and a
//! gate:
//!
//! - **History** ([`record`]): normalizes a run manifest into a compact
//!   [`record::QorRecord`] (git SHA, threads, per-stage span times,
//!   solver iteration counts, dosePl tallies, the manifest's `qor`
//!   section) and appends it as one JSON line to a committed history
//!   file (`results/qor_history.jsonl`).
//! - **Diff** ([`diff`]): compares a run against a rolling baseline
//!   window with noise-aware verdicts — per-metric median/MAD
//!   thresholds, per-metric directionality (leakage/period/time
//!   lower-is-better, accepted-swaps/WNS higher-is-better) — and
//!   reports confirmed regressions for the CLI to exit nonzero on.
//! - **Reports** ([`markdown`], [`dashboard`]): a markdown diff summary
//!   and a self-contained HTML dashboard (per-stage time breakdown, IPM
//!   convergence sparkline from observer records, swap-filter
//!   accept/reject bars) with zero external dependencies, hand-rolled
//!   like `dme-obs`'s JSON.
//! - **Profiles** ([`profile`], [`flamegraph`]): parses the manifest
//!   v3 `profile` section (per-span self/total wall time and
//!   allocation attribution), diffs two runs' profile trees with the
//!   same median/MAD floors (`dmeopt prof diff` exits 3 on a confirmed
//!   self-time regression), and renders self-contained flamegraph
//!   SVGs — standalone or embedded as a dashboard panel.
//!
//! The `dmeopt qor` subcommands (`ingest`, `diff`, `report`) are the
//! front end; `scripts/bench_perf.sh` feeds the companion
//! `results/bench_history.jsonl` perf trajectory that the dashboard
//! also renders.

#![deny(missing_docs)]

pub mod dashboard;
pub mod diff;
pub mod flamegraph;
pub mod markdown;
pub mod profile;
pub mod record;
pub mod watch;

pub use diff::{diff_records, DiffConfig, DiffReport, Direction, MetricVerdict, Verdict};
pub use flamegraph::flamegraph_svg;
pub use profile::{
    diff_profiles, parse_manifest_profile, profile_from_manifest_value, profile_tree_text, Profile,
    ProfileDiffConfig,
};
pub use record::{
    append_history, normalize_manifest, parse_history, QorRecord, QOR_HISTORY_SCHEMA_VERSION,
};
pub use watch::{render_snapshot, text_sparkline};
