//! Self-contained HTML run dashboard.
//!
//! Hand-rolled HTML + inline CSS + inline SVG — no external scripts,
//! stylesheets, fonts or fetches, so the artifact renders identically
//! from a CI artifact store, a mail attachment, or `file://`. Sections:
//!
//! 1. run header (git SHA, binary, threads, features, status);
//! 2. per-stage wall-time breakdown of the latest run (horizontal bars);
//! 3. IPM convergence — a log₁₀(µ) sparkline per Newton iteration when a
//!    manifest with `ipm_iter` observer records is supplied, else the
//!    iteration-count trend across history;
//! 4. dosePl swap-filter accept/reject bars;
//! 5. QoR metric trends across the history (sparkline per metric);
//! 6. profile flamegraph (manifest v3 `profile` section, inline icicle);
//! 7. optional diff verdicts and bench-perf speedup trajectory (with a
//!    relative link to the `scripts/bench_trend.py` trend page);
//! 8. optional "Live snapshot" panel — the last schema-v1 telemetry
//!    snapshot (status, stalled stages, open span stacks, solver
//!    progress) the publisher wrote for the run.

use crate::diff::{DiffReport, Verdict};
use crate::record::QorRecord;
use dme_obs::json::Value;
use std::fmt::Write as _;

/// Everything the dashboard can render. Only `history` is required;
/// absent sections degrade to a short note rather than an error.
#[derive(Default)]
pub struct DashboardInput<'a> {
    /// QoR history records, oldest first; the last one is "the run".
    pub history: &'a [QorRecord],
    /// Full manifest of the latest run, for per-iteration solver
    /// records (`records.ipm_iter`).
    pub manifest: Option<&'a Value>,
    /// Parsed lines of `results/bench_history.jsonl`, oldest first.
    pub bench_history: &'a [Value],
    /// A run-vs-baseline comparison to embed.
    pub diff: Option<&'a DiffReport>,
    /// Last live telemetry snapshot of the run (schema v1, the file
    /// the snapshot publisher maintains), for the "Live snapshot"
    /// panel.
    pub snapshot: Option<&'a Value>,
    /// Page title.
    pub title: &'a str,
}

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    esc(&mut out, s);
    out
}

/// An inline SVG sparkline of `values` (min–max normalized). Returns a
/// placeholder note for fewer than two points.
fn sparkline(values: &[f64], w: u32, h: u32) -> String {
    if values.len() < 2 {
        return "<span class=\"muted\">not enough points</span>".to_string();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if (hi - lo).abs() < 1e-300 {
        1.0
    } else {
        hi - lo
    };
    let mut pts = String::new();
    let n = values.len();
    for (i, &v) in values.iter().enumerate() {
        let x = f64::from(w) * i as f64 / (n - 1) as f64;
        let y = f64::from(h) * (1.0 - (v - lo) / span);
        let _ = write!(pts, "{}{x:.1},{y:.1}", if i > 0 { " " } else { "" });
    }
    format!(
        "<svg class=\"spark\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\
         <polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\" points=\"{pts}\"/></svg>"
    )
}

/// A horizontal bar of relative width `frac ∈ [0, 1]`, labelled with
/// `text`.
fn bar(frac: f64, text: &str, class: &str) -> String {
    let pct = (frac.clamp(0.0, 1.0) * 100.0).max(0.5);
    format!(
        "<div class=\"barrow\"><div class=\"bar {class}\" style=\"width:{pct:.1}%\"></div>\
         <span class=\"barlabel\">{}</span></div>",
        escaped(text)
    )
}

fn section(out: &mut String, title: &str, body: &str) {
    let _ = write!(out, "<section><h2>{}</h2>{body}</section>", escaped(title));
}

fn stage_breakdown(latest: &QorRecord) -> String {
    if latest.stages_ms.is_empty() {
        return "<p class=\"muted\">no stage spans recorded</p>".to_string();
    }
    let mut rows: Vec<(&String, &f64)> = latest.stages_ms.iter().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap_or(std::cmp::Ordering::Equal));
    let max = *rows[0].1;
    let mut body = String::new();
    for (path, &ms) in rows {
        body.push_str(&bar(
            if max > 0.0 { ms / max } else { 0.0 },
            &format!("{path} — {ms:.2} ms"),
            "stage",
        ));
    }
    body
}

fn ipm_convergence(input: &DashboardInput) -> String {
    // Preferred source: per-iteration observer records in the manifest.
    if let Some(rows) = input
        .manifest
        .and_then(|m| m.get("records"))
        .and_then(|r| r.get("ipm_iter"))
        .and_then(|r| r.get("rows"))
        .and_then(Value::as_array)
    {
        let mus: Vec<f64> = rows
            .iter()
            .filter_map(|row| row.get("mu").and_then(Value::as_f64))
            .filter(|&mu| mu > 0.0)
            .map(f64::log10)
            .collect();
        if mus.len() >= 2 {
            return format!(
                "<p>log<sub>10</sub>(µ) over {} IPM Newton iterations (all solves):</p>{}",
                mus.len(),
                sparkline(&mus, 480, 60)
            );
        }
    }
    // Fallback: iteration-count trend across the history.
    let iters: Vec<f64> = input
        .history
        .iter()
        .filter_map(|r| r.counters.get("qp/ipm_iterations").copied())
        .collect();
    if iters.len() >= 2 {
        format!(
            "<p>qp/ipm_iterations across the last {} runs:</p>{}",
            iters.len(),
            sparkline(&iters, 480, 60)
        )
    } else {
        "<p class=\"muted\">no IPM telemetry available</p>".to_string()
    }
}

fn qcp_probe_panel(input: &DashboardInput) -> String {
    let Some(rows) = input
        .manifest
        .and_then(|m| m.get("records"))
        .and_then(|r| r.get("qcp_probe"))
        .and_then(|r| r.get("rows"))
        .and_then(Value::as_array)
    else {
        return "<p class=\"muted\">no QCP probe telemetry (MinTiming runs with tracing \
                record one row per bisection probe)</p>"
            .to_string();
    };
    let iters: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.get("iterations").and_then(Value::as_f64))
        .collect();
    let flag = |key: &str| {
        rows.iter()
            .filter(|r| r.get(key).and_then(Value::as_f64).unwrap_or(0.0) > 0.5)
            .count()
    };
    let warm = flag("warm");
    let feasible = flag("feasible");
    let mut body = format!(
        "<p>{} bisection probes — {warm} warm-started, {feasible} feasible. \
         IPM iterations per probe (warm starts should flatten the tail):</p>",
        rows.len()
    );
    body.push_str(&sparkline(&iters, 480, 60));
    body
}

fn swap_tallies(latest: &QorRecord) -> String {
    let tallies: Vec<(&String, &f64)> = latest
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("dosepl/"))
        .collect();
    if tallies.is_empty() {
        return "<p class=\"muted\">no dosePl tallies recorded</p>".to_string();
    }
    let max = tallies.iter().map(|(_, &v)| v).fold(0.0f64, f64::max);
    let mut body = String::new();
    for (name, &v) in tallies {
        let class = if name.contains("accepted") {
            "accept"
        } else if name.contains("rejected") || name.contains("rolled_back") {
            "reject"
        } else {
            "stage"
        };
        body.push_str(&bar(
            if max > 0.0 { v / max } else { 0.0 },
            &format!("{name} — {v:.0}"),
            class,
        ));
    }
    body
}

fn qor_trends(history: &[QorRecord]) -> String {
    let Some(latest) = history.last() else {
        return "<p class=\"muted\">empty history</p>".to_string();
    };
    if latest.qor.is_empty() {
        return "<p class=\"muted\">latest run carries no QoR metrics</p>".to_string();
    }
    let mut body = String::from(
        "<table><tr><th>metric</th><th>latest</th><th>trend (oldest → newest)</th></tr>",
    );
    for (name, &value) in &latest.qor {
        let series: Vec<f64> = history
            .iter()
            .filter_map(|r| r.qor.get(name).copied())
            .collect();
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{value:.6}</td><td>{}</td></tr>",
            escaped(name),
            sparkline(&series, 160, 24)
        );
    }
    body.push_str("</table>");
    body
}

fn diff_section(diff: &DiffReport) -> String {
    let regressed = diff.count(Verdict::Regressed);
    let cls = if regressed > 0 { "bad" } else { "good" };
    let word = if regressed > 0 { "REGRESSED" } else { "OK" };
    let mut body = format!(
        "<p class=\"{cls}\">{word}: {regressed} regressed, {} improved, {} stable \
         (run {} vs {} baseline record(s))</p>",
        diff.count(Verdict::Improved),
        diff.count(Verdict::Stable),
        escaped(&diff.run_label),
        diff.baseline_n
    );
    let moved: Vec<_> = diff
        .verdicts
        .iter()
        .filter(|m| m.verdict != Verdict::Stable)
        .collect();
    if !moved.is_empty() {
        body.push_str(
            "<table><tr><th>metric</th><th>run</th><th>baseline median</th>\
             <th>worse-by</th><th>threshold</th><th>verdict</th></tr>",
        );
        for m in moved {
            let fmt = |x: Option<f64>| x.map_or_else(|| "—".to_string(), |v| format!("{v:.6}"));
            let _ = write!(
                body,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.6}</td><td>{:.6}</td>\
                 <td class=\"{}\">{}</td></tr>",
                escaped(&m.name),
                fmt(m.value),
                fmt(m.median),
                m.worse_by,
                m.threshold,
                if m.verdict == Verdict::Regressed {
                    "bad"
                } else {
                    "good"
                },
                m.verdict.name()
            );
        }
        body.push_str("</table>");
    }
    body
}

fn flamegraph_panel(input: &DashboardInput) -> String {
    let profile = input
        .manifest
        .and_then(|m| crate::profile::profile_from_manifest_value(m, "latest run"));
    match profile {
        Some(p) if !p.nodes.is_empty() => {
            let mut body = String::from(
                "<p>Span-path icicle: width ∝ total wall time; the gap right of a \
                 parent's children is its self time. Hover a frame for calls, \
                 self time and allocation attribution.</p>",
            );
            // Inline variant: the dashboard forbids external references,
            // including the SVG namespace URL a standalone file needs.
            body.push_str(&crate::flamegraph::flamegraph_svg(&p, "profile", false));
            body
        }
        _ => "<p class=\"muted\">no profile section in the manifest (schema v3 runs \
              with tracing enabled record one)</p>"
            .to_string(),
    }
}

fn snapshot_panel(snap: &Value) -> String {
    let schema = snap
        .get("schema_version")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if schema as u32 != crate::watch::SUPPORTED_SNAPSHOT_SCHEMA {
        return format!(
            "<p class=\"muted\">snapshot schema v{schema:.0} not supported \
             (expected v{})</p>",
            crate::watch::SUPPORTED_SNAPSHOT_SCHEMA
        );
    }
    let status = snap.get("status").and_then(Value::as_str).unwrap_or("?");
    let seq = snap.get("seq").and_then(Value::as_f64).unwrap_or(0.0);
    let ts_s = snap.get("ts_us").and_then(Value::as_f64).unwrap_or(0.0) / 1e6;
    let cls = match status {
        "panicked" => "bad",
        "final" => "good",
        _ => "stage",
    };
    let mut body = format!(
        "<p>status <b class=\"{cls}\">{}</b> — snapshot #{seq:.0} at t+{ts_s:.1}s</p>",
        escaped(status)
    );
    if let Some(stalled) = snap.get("stalled").and_then(Value::as_array) {
        for s in stalled {
            let path = s.get("path").and_then(Value::as_str).unwrap_or("?");
            let open = s.get("open_ms").and_then(Value::as_f64).unwrap_or(0.0);
            let mult = s.get("mult").and_then(Value::as_f64).unwrap_or(0.0);
            let _ = write!(
                body,
                "<p class=\"bad\">STALLED {} — open {open:.0} ms \
                 ({mult:.1}× its baseline p95)</p>",
                escaped(path)
            );
        }
    }
    if let Some(threads) = snap.get("threads").and_then(Value::as_array) {
        for t in threads {
            let label = t.get("label").and_then(Value::as_str).unwrap_or("?");
            let open: Vec<String> = t
                .get("stack")
                .and_then(Value::as_array)
                .map(|frames| {
                    frames
                        .iter()
                        .filter_map(|f| f.get("path").and_then(Value::as_str))
                        .map(escaped)
                        .collect()
                })
                .unwrap_or_default();
            if !open.is_empty() {
                let _ = write!(
                    body,
                    "<p><b>[{}]</b> open: {}</p>",
                    escaped(label),
                    open.join(" › ")
                );
            }
        }
    }
    let num = |section: &str, key: &str| {
        snap.get(section)
            .and_then(|s| s.get(key))
            .and_then(Value::as_f64)
    };
    if let (Some(round), Some(accepted), Some(swaps)) = (
        num("dosepl", "round"),
        num("dosepl", "accepted"),
        num("dosepl", "swaps"),
    ) {
        let _ = write!(
            body,
            "<p class=\"muted\">dosePl round {round:.0} — {accepted:.0}/{swaps:.0} \
             swaps accepted</p>"
        );
    }
    if let (Some(iter), Some(mu)) = (num("ipm", "iter"), num("ipm", "mu")) {
        let _ = write!(
            body,
            "<p class=\"muted\">IPM iter {iter:.0} — µ {mu:.2e}</p>"
        );
    }
    if let (Some(events), Some(dropped)) = (num("stream", "events"), num("stream", "dropped")) {
        let _ = write!(
            body,
            "<p class=\"muted\">stream: {events:.0} events, {dropped:.0} dropped</p>"
        );
    }
    body
}

fn bench_trajectory(bench: &[Value]) -> String {
    if bench.is_empty() {
        return "<p class=\"muted\">no bench history (run scripts/bench_perf.sh, \
                then scripts/bench_trend.py for the full trend page)</p>"
            .to_string();
    }
    let stems = ["spmv_mul", "spmv_tmul", "cg_ipm_solve", "sta_pass"];
    let mut body = String::from(
        "<table><tr><th>kernel</th><th>latest speedup (parallel/serial)</th>\
         <th>trend</th></tr>",
    );
    for stem in stems {
        let series: Vec<f64> = bench
            .iter()
            .filter_map(|line| {
                line.get("speedups_parallel_over_serial")
                    .and_then(|s| s.get(stem))
                    .and_then(Value::as_f64)
            })
            .collect();
        let latest = series
            .last()
            .map_or_else(|| "—".to_string(), |v| format!("{v:.2}×"));
        let _ = write!(
            body,
            "<tr><td>{stem}</td><td>{latest}</td><td>{}</td></tr>",
            sparkline(&series, 160, 24)
        );
    }
    body.push_str("</table>");
    // Relative link only: the trend page sits next to the dashboard in
    // results/, so the document stays fetch-free.
    body.push_str(
        "<p class=\"muted\">full per-metric history: \
         <a href=\"bench_trend.html\">bench_trend.html</a> \
         (regenerate with scripts/bench_trend.py)</p>",
    );
    body
}

const STYLE: &str = "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:60em;\
color:#111}h1{font-size:1.4em}h2{font-size:1.1em;border-bottom:1px solid #ddd;\
padding-bottom:.2em;margin-top:1.6em}table{border-collapse:collapse}td,th{padding:.25em .7em;\
border:1px solid #e5e7eb;text-align:left}th{background:#f8fafc}.muted{color:#6b7280}\
.good{color:#15803d}.bad{color:#b91c1c;font-weight:600}.barrow{position:relative;height:1.4em;\
margin:2px 0;background:#f1f5f9}.bar{position:absolute;top:0;left:0;bottom:0}\
.bar.stage{background:#93c5fd}.bar.accept{background:#86efac}.bar.reject{background:#fca5a5}\
.barlabel{position:relative;padding-left:.4em;font-size:.85em;white-space:nowrap}\
.spark{vertical-align:middle;background:#f8fafc}";

/// Renders the full dashboard as one self-contained HTML document.
pub fn render(input: &DashboardInput) -> String {
    let mut out = String::with_capacity(8192);
    let _ = write!(
        out,
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>{}</title><style>{STYLE}</style></head><body><h1>{}</h1>",
        escaped(input.title),
        escaped(input.title)
    );

    if let Some(latest) = input.history.last() {
        let _ = write!(
            out,
            "<p>latest run: <b>{}</b> — threads {:.0}, parallel {}, status {} \
             ({} run(s) in history)</p>",
            escaped(&latest.label()),
            latest.threads,
            latest.parallel,
            escaped(if latest.status.is_empty() {
                "unknown"
            } else {
                &latest.status
            }),
            input.history.len()
        );
        section(
            &mut out,
            "Per-stage time breakdown",
            &stage_breakdown(latest),
        );
        section(&mut out, "IPM convergence", &ipm_convergence(input));
        section(&mut out, "QCP probe warm starts", &qcp_probe_panel(input));
        section(
            &mut out,
            "dosePl swap-filter tallies",
            &swap_tallies(latest),
        );
        section(&mut out, "QoR trends", &qor_trends(input.history));
        section(&mut out, "Profile flamegraph", &flamegraph_panel(input));
    } else {
        out.push_str("<p class=\"muted\">empty history — nothing to render</p>");
    }
    if let Some(diff) = input.diff {
        section(&mut out, "Run vs baseline", &diff_section(diff));
    }
    if let Some(snap) = input.snapshot {
        section(&mut out, "Live snapshot", &snapshot_panel(snap));
    }
    section(
        &mut out,
        "Kernel speedup trajectory",
        &bench_trajectory(input.bench_history),
    );
    out.push_str("</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_obs::json;

    fn rec_with_everything() -> QorRecord {
        let mut r = QorRecord {
            git_sha: "abc1234".into(),
            bin: "dmeopt".into(),
            command: "flow".into(),
            profile: "tiny".into(),
            threads: 4.0,
            parallel: true,
            status: "ok".into(),
            ..QorRecord::default()
        };
        r.stages_ms.insert("flow".into(), 20.0);
        r.stages_ms.insert("flow/dmopt".into(), 15.0);
        r.counters.insert("qp/ipm_iterations".into(), 18.0);
        r.counters.insert("dosepl/swaps_accepted".into(), 7.0);
        r.counters.insert("dosepl/rejected_hpwl".into(), 3.0);
        r.qor.insert("flow/final_mct_ns".into(), 1.875);
        r
    }

    #[test]
    fn dashboard_is_self_contained_and_has_every_section() {
        let history = vec![rec_with_everything(), rec_with_everything()];
        let manifest = json::parse(concat!(
            "{\"records\":{\"ipm_iter\":{\"rows\":[{\"mu\":1.0},{\"mu\":0.1},{\"mu\":0.001}]},",
            "\"qcp_probe\":{\"rows\":[",
            "{\"probe\":1,\"tau_ns\":1.9,\"feasible\":1,\"iterations\":14,\"warm\":0},",
            "{\"probe\":2,\"tau_ns\":1.7,\"feasible\":0,\"iterations\":9,\"warm\":1},",
            "{\"probe\":3,\"tau_ns\":1.8,\"feasible\":1,\"iterations\":7,\"warm\":1}]}},",
            "\"profile\":{\"alloc_tracking\":true,\"nodes\":{",
            "\"flow\":{\"calls\":1,\"total_ns\":20000000,\"self_ns\":5000000,",
            "\"max_ns\":20000000,\"p50_ns\":20000000,\"p95_ns\":20000000,",
            "\"alloc_bytes\":2048,\"alloc_count\":4,\"self_alloc_bytes\":1024,",
            "\"self_alloc_count\":2},",
            "\"flow/dmopt\":{\"calls\":1,\"total_ns\":15000000,\"self_ns\":15000000,",
            "\"max_ns\":15000000,\"p50_ns\":15000000,\"p95_ns\":15000000,",
            "\"alloc_bytes\":1024,\"alloc_count\":2,\"self_alloc_bytes\":1024,",
            "\"self_alloc_count\":2}}}}",
        ))
        .unwrap();
        let bench = vec![
            json::parse("{\"speedups_parallel_over_serial\":{\"spmv_mul\":2.5}}").unwrap(),
            json::parse("{\"speedups_parallel_over_serial\":{\"spmv_mul\":2.7}}").unwrap(),
        ];
        let snapshot = json::parse(concat!(
            "{\"schema_version\":1,\"seq\":9,\"ts_us\":2500000,\"status\":\"running\",",
            "\"threads\":[{\"label\":\"main\",\"alloc_bytes\":0,\"alloc_count\":0,",
            "\"stack\":[{\"path\":\"flow\",\"open_us\":2400000},",
            "{\"path\":\"flow/dosepl\",\"open_us\":2100000}]}],",
            "\"dosepl\":{\"round\":3,\"swaps\":10,\"accepted\":4},",
            "\"ipm\":{\"iter\":12,\"mu\":0.0000031},",
            "\"stream\":{\"events\":4096,\"dropped\":7},",
            "\"stalled\":[{\"thread\":\"main\",\"path\":\"flow/dosepl\",",
            "\"open_ms\":2100,\"baseline_p95_ms\":120,\"mult\":17.5}]}",
        ))
        .unwrap();
        let html = render(&DashboardInput {
            history: &history,
            manifest: Some(&manifest),
            bench_history: &bench,
            diff: None,
            snapshot: Some(&snapshot),
            title: "QoR dashboard",
        });
        for needle in [
            "Per-stage time breakdown",
            "IPM convergence",
            "QCP probe warm starts",
            "3 bisection probes — 2 warm-started, 2 feasible",
            "dosePl swap-filter tallies",
            "QoR trends",
            "Profile flamegraph",
            "<title>flow/dmopt",
            "Kernel speedup trajectory",
            "flow/dmopt — 15.00 ms",
            "<svg",
            "bench_trend.html",
            "Live snapshot",
            "snapshot #9 at t+2.5s",
            "STALLED flow/dosepl",
            "flow › flow/dosepl",
            "4/10 swaps accepted",
            "4096 events, 7 dropped",
        ] {
            assert!(html.contains(needle), "missing {needle:?}");
        }
        // Self-contained: no external fetches of any kind.
        for forbidden in ["http://", "https://", "<script src", "<link"] {
            assert!(!html.contains(forbidden), "external ref {forbidden:?}");
        }
    }

    #[test]
    fn empty_history_renders_a_note() {
        let html = render(&DashboardInput {
            title: "empty",
            ..DashboardInput::default()
        });
        assert!(html.contains("empty history"));
    }

    #[test]
    fn sparkline_handles_flat_and_short_series() {
        assert!(sparkline(&[1.0], 100, 20).contains("not enough points"));
        let flat = sparkline(&[5.0, 5.0, 5.0], 100, 20);
        assert!(flat.contains("polyline"));
    }
}
