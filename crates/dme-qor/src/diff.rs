//! Noise-aware run-over-run comparison.
//!
//! A run is compared metric-by-metric against a rolling baseline
//! window. For each metric the baseline's **median** and **MAD**
//! (median absolute deviation — robust to the occasional outlier run)
//! set a regression threshold of `k·MAD`, floored by a small relative
//! tolerance so an all-identical baseline (MAD = 0) does not flag
//! floating-point dust, with a larger floor for wall-clock metrics
//! which are inherently machine-noisy. Every metric carries a
//! direction: leakage, clock period and stage time regress *upward*;
//! accepted swaps and WNS regress *downward*.

use crate::record::QorRecord;
use std::collections::BTreeSet;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (leakage, clock period, wall time, iterations).
    LowerIsBetter,
    /// Larger is better (accepted swaps, WNS, speedups, work ratios).
    HigherIsBetter,
}

/// Directionality by metric name. Higher-is-better names are the
/// explicit exceptions; everything else (leakage, periods, times,
/// iteration counts, reject tallies) regresses upward.
pub fn metric_direction(name: &str) -> Direction {
    const HIGHER: [&str; 5] = ["accepted", "wns", "speedup", "work_ratio", "improvement"];
    if HIGHER.iter().any(|k| name.contains(k)) {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    }
}

/// Per-metric comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Worse than the baseline by more than the noise threshold.
    Regressed,
    /// Better than the baseline by more than the noise threshold.
    Improved,
    /// Within the noise threshold.
    Stable,
    /// Present in the run but absent from every baseline record.
    New,
    /// Present in the baseline but absent from the run.
    Missing,
}

impl Verdict {
    /// Lower-case name, as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Stable => "stable",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        }
    }
}

/// Thresholding knobs. Defaults: 3×MAD, a 0.1% relative floor for
/// deterministic metrics, a 25% floor for wall-clock metrics, and a
/// 20-run rolling window.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Multiple of the baseline MAD a deviation must exceed to count.
    pub k_mad: f64,
    /// Relative floor (fraction of |median|) for deterministic metrics.
    pub min_rel: f64,
    /// Relative floor for `stage_ms/` wall-clock metrics, which vary
    /// run-to-run on real machines even when nothing changed.
    pub time_min_rel: f64,
    /// Absolute floor, guarding against MAD = median = 0.
    pub min_abs: f64,
    /// Number of most-recent baseline records considered.
    pub window: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            k_mad: 3.0,
            min_rel: 0.001,
            time_min_rel: 0.25,
            min_abs: 1e-9,
            window: 20,
        }
    }
}

/// The comparison result for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    /// Flattened metric name (`qor/…`, `stage_ms/…`, `counter/…`).
    pub name: String,
    /// Direction applied.
    pub direction: Direction,
    /// The run's value (`None` for [`Verdict::Missing`]).
    pub value: Option<f64>,
    /// Baseline median (`None` for [`Verdict::New`]).
    pub median: Option<f64>,
    /// Baseline MAD (`None` for [`Verdict::New`]).
    pub mad: Option<f64>,
    /// Signed deviation in the *worse* direction (positive = worse).
    pub worse_by: f64,
    /// The threshold the deviation was compared against.
    pub threshold: f64,
    /// The outcome.
    pub verdict: Verdict,
}

/// A full run-vs-baseline comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Label of the run under test.
    pub run_label: String,
    /// Label of the baseline (file name or record label).
    pub baseline_label: String,
    /// Baseline records actually used (after windowing).
    pub baseline_n: usize,
    /// Per-metric verdicts, regressions first, then improvements, new,
    /// missing, and stable metrics, each group sorted by name.
    pub verdicts: Vec<MetricVerdict>,
}

impl DiffReport {
    /// Number of metrics with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.verdicts.iter().filter(|m| m.verdict == v).count()
    }

    /// Whether any metric regressed beyond its noise threshold.
    pub fn has_regression(&self) -> bool {
        self.count(Verdict::Regressed) > 0
    }

    /// The regressed metrics, worst (largest threshold-relative
    /// deviation) first.
    pub fn regressions(&self) -> Vec<&MetricVerdict> {
        let mut v: Vec<_> = self
            .verdicts
            .iter()
            .filter(|m| m.verdict == Verdict::Regressed)
            .collect();
        v.sort_by(|a, b| {
            let ra = a.worse_by / a.threshold.max(f64::MIN_POSITIVE);
            let rb = b.worse_by / b.threshold.max(f64::MIN_POSITIVE);
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }
}

/// Flattens a record into `(metric name, value)` pairs: the `qor`
/// section, per-stage times, and counters, under distinguishing
/// prefixes.
pub fn metrics_of(rec: &QorRecord) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (k, v) in &rec.qor {
        out.push((format!("qor/{k}"), *v));
    }
    for (k, v) in &rec.stages_ms {
        out.push((format!("stage_ms/{k}"), *v));
    }
    for (k, v) in &rec.counters {
        out.push((format!("counter/{k}"), *v));
    }
    out
}

fn metric_value(rec: &QorRecord, name: &str) -> Option<f64> {
    if let Some(k) = name.strip_prefix("qor/") {
        rec.qor.get(k).copied()
    } else if let Some(k) = name.strip_prefix("stage_ms/") {
        rec.stages_ms.get(k).copied()
    } else if let Some(k) = name.strip_prefix("counter/") {
        rec.counters.get(k).copied()
    } else {
        None
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median and MAD of a non-empty sample.
pub(crate) fn robust_stats(values: &[f64]) -> (f64, f64) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let med = median_of(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (med, median_of(&dev))
}

/// Compares `run` against the last [`DiffConfig::window`] records of
/// `baseline`, metric by metric.
pub fn diff_records(run: &QorRecord, baseline: &[QorRecord], cfg: &DiffConfig) -> DiffReport {
    let window_start = baseline.len().saturating_sub(cfg.window.max(1));
    let window = &baseline[window_start..];

    let mut names: BTreeSet<String> = metrics_of(run).into_iter().map(|(n, _)| n).collect();
    for rec in window {
        names.extend(metrics_of(rec).into_iter().map(|(n, _)| n));
    }

    let mut verdicts = Vec::with_capacity(names.len());
    for name in names {
        let direction = metric_direction(&name);
        let value = metric_value(run, &name);
        let samples: Vec<f64> = window
            .iter()
            .filter_map(|rec| metric_value(rec, &name))
            .collect();
        let mv = match (value, samples.is_empty()) {
            (None, _) => MetricVerdict {
                name,
                direction,
                value: None,
                median: None,
                mad: None,
                worse_by: 0.0,
                threshold: 0.0,
                verdict: Verdict::Missing,
            },
            (Some(v), true) => MetricVerdict {
                name,
                direction,
                value: Some(v),
                median: None,
                mad: None,
                worse_by: 0.0,
                threshold: 0.0,
                verdict: Verdict::New,
            },
            (Some(v), false) => {
                let (median, mad) = robust_stats(&samples);
                let rel_floor = if name.starts_with("stage_ms/") {
                    cfg.time_min_rel
                } else {
                    cfg.min_rel
                };
                let threshold = (cfg.k_mad * mad)
                    .max(rel_floor * median.abs())
                    .max(cfg.min_abs);
                let worse_by = match direction {
                    Direction::LowerIsBetter => v - median,
                    Direction::HigherIsBetter => median - v,
                };
                // On a width-1 pool every parallel variant runs the
                // inline-serial path, so speedup ratios measure dispatch
                // noise rather than parallel QoR: report them but never
                // gate on them (threads = 0 means "unknown" and still
                // gates).
                let informational =
                    name.contains("speedup") && run.threads > 0.0 && run.threads <= 1.0;
                let verdict = if worse_by > threshold {
                    if informational {
                        Verdict::Stable
                    } else {
                        Verdict::Regressed
                    }
                } else if worse_by < -threshold {
                    Verdict::Improved
                } else {
                    Verdict::Stable
                };
                MetricVerdict {
                    name,
                    direction,
                    value: Some(v),
                    median: Some(median),
                    mad: Some(mad),
                    worse_by,
                    threshold,
                    verdict,
                }
            }
        };
        verdicts.push(mv);
    }

    let group = |v: Verdict| match v {
        Verdict::Regressed => 0,
        Verdict::Improved => 1,
        Verdict::New => 2,
        Verdict::Missing => 3,
        Verdict::Stable => 4,
    };
    verdicts.sort_by(|a, b| {
        group(a.verdict)
            .cmp(&group(b.verdict))
            .then_with(|| a.name.cmp(&b.name))
    });

    DiffReport {
        run_label: run.label(),
        baseline_label: String::new(),
        baseline_n: window.len(),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal record carrying one leakage metric plus one stage time.
    fn rec(leakage: f64, stage_ms: f64) -> QorRecord {
        let mut r = QorRecord {
            git_sha: "test".into(),
            bin: "dmeopt".into(),
            command: "flow".into(),
            ..QorRecord::default()
        };
        r.qor.insert("flow/final_leakage_uw".into(), leakage);
        r.stages_ms.insert("flow".into(), stage_ms);
        r
    }

    /// Baseline: median 100.0, MAD 0.2 on leakage; stage times with
    /// heavy (±40%) machine noise.
    fn noisy_baseline() -> Vec<QorRecord> {
        [
            (99.6, 80.0),
            (100.4, 120.0),
            (99.8, 95.0),
            (100.2, 140.0),
            (99.9, 100.0),
            (100.1, 105.0),
            (100.0, 91.0),
        ]
        .iter()
        .map(|&(l, t)| rec(l, t))
        .collect()
    }

    #[test]
    fn directionality_assignments() {
        assert_eq!(
            metric_direction("qor/flow/delta_leakage_uw"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            metric_direction("qor/flow/wns_ns"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            metric_direction("counter/dosepl/swaps_accepted"),
            Direction::HigherIsBetter
        );
        assert_eq!(metric_direction("stage_ms/flow"), Direction::LowerIsBetter);
        assert_eq!(
            metric_direction("counter/qp/ipm_iterations"),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn pure_noise_rerun_has_no_false_positive() {
        let baseline = noisy_baseline();
        // A rerun inside the noise band on every axis (stage-time MAD
        // is 9 ms → 3×MAD threshold 27 ms around the 100 ms median).
        let run = rec(100.3, 118.0);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        assert!(
            !report.has_regression(),
            "false positive: {:?}",
            report.regressions()
        );
    }

    #[test]
    fn three_mad_leakage_step_is_detected() {
        let baseline = noisy_baseline();
        // MAD = 0.2 → threshold 3×MAD = 0.6; a step just past it (3.5×)
        // must be flagged, and charged to the leakage metric only.
        let run = rec(100.7, 100.0);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        assert!(report.has_regression());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "qor/flow/final_leakage_uw");
        assert_eq!(regs[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let baseline = noisy_baseline();
        let run = rec(95.0, 100.0);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        assert!(!report.has_regression());
        assert_eq!(report.count(Verdict::Improved), 1);
    }

    #[test]
    fn higher_is_better_regresses_downward() {
        let mut baseline = Vec::new();
        for accepted in [10.0, 11.0, 10.0, 9.0, 10.0] {
            let mut r = rec(100.0, 100.0);
            r.counters.insert("dosepl/swaps_accepted".into(), accepted);
            baseline.push(r);
        }
        // MAD = 0; the 0.1% relative floor applies. Dropping 10 → 2
        // accepted swaps is far beyond it.
        let mut run = rec(100.0, 100.0);
        run.counters.insert("dosepl/swaps_accepted".into(), 2.0);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "counter/dosepl/swaps_accepted");
    }

    #[test]
    fn identical_baseline_tolerates_fp_dust() {
        let baseline = vec![rec(100.0, 100.0); 5];
        let run = rec(100.0 + 1e-10, 100.0);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        assert!(!report.has_regression());
    }

    #[test]
    fn wall_time_noise_needs_the_bigger_floor() {
        // Single-sample baseline: MAD = 0, so stage times fall back to
        // the 25% floor — a 20% slower run is noise, 50% is not.
        let baseline = vec![rec(100.0, 100.0)];
        let cfg = DiffConfig::default();
        assert!(!diff_records(&rec(100.0, 120.0), &baseline, &cfg).has_regression());
        let slow = diff_records(&rec(100.0, 160.0), &baseline, &cfg);
        assert_eq!(slow.regressions()[0].name, "stage_ms/flow");
    }

    #[test]
    fn new_and_missing_metrics_are_informational() {
        let baseline = vec![rec(100.0, 100.0)];
        let mut run = rec(100.0, 100.0);
        run.qor.remove("flow/final_leakage_uw");
        run.qor.insert("flow/extra_metric".into(), 1.0);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        assert!(!report.has_regression());
        assert_eq!(report.count(Verdict::New), 1);
        assert_eq!(report.count(Verdict::Missing), 1);
    }

    #[test]
    fn speedups_never_gate_on_a_one_thread_run() {
        let mut baseline = Vec::new();
        for s in [3.0, 3.1, 2.9, 3.0, 3.05] {
            let mut r = rec(100.0, 100.0);
            r.threads = 4.0;
            r.qor.insert("bench/speedup_sta_pass".into(), s);
            baseline.push(r);
        }
        // A 1-thread run inevitably "loses" the speedup (the parallel
        // variant runs serially) — informational, not a regression.
        let mut run = rec(100.0, 100.0);
        run.threads = 1.0;
        run.qor.insert("bench/speedup_sta_pass".into(), 0.7);
        let report = diff_records(&run, &baseline, &DiffConfig::default());
        assert!(
            !report.has_regression(),
            "one-thread speedup gated: {:?}",
            report.regressions()
        );
        // The same drop on a multi-thread run is a real regression, and
        // threads = 0 (unknown) must not get the exemption either.
        for threads in [4.0, 0.0] {
            let mut run = rec(100.0, 100.0);
            run.threads = threads;
            run.qor.insert("bench/speedup_sta_pass".into(), 0.7);
            let report = diff_records(&run, &baseline, &DiffConfig::default());
            assert!(
                report
                    .regressions()
                    .iter()
                    .any(|m| m.name == "qor/bench/speedup_sta_pass"),
                "threads={threads} should gate"
            );
        }
    }

    #[test]
    fn window_limits_the_baseline() {
        // Old garbage outside the window must not perturb the stats.
        let mut baseline = vec![rec(1e9, 100.0); 10];
        baseline.extend(noisy_baseline());
        let cfg = DiffConfig {
            window: 7,
            ..DiffConfig::default()
        };
        let report = diff_records(&rec(100.0, 100.0), &baseline, &cfg);
        assert!(!report.has_regression());
        assert_eq!(report.baseline_n, 7);
    }
}
