//! Hand-rolled flamegraph SVG exporter for profile trees.
//!
//! Icicle layout (roots on top, children below), x-width proportional
//! to total wall time, same zero-dependency inline-SVG approach as the
//! dashboard: no scripts, no fonts, no fetches — hover tooltips come
//! from `<title>` elements, colors from a deterministic hash of the
//! frame name (warm flamegraph palette), so the same profile always
//! renders the same bytes. The gap at the right of a parent's children
//! row *is* the parent's self time.

use crate::profile::{Profile, ProfileNode};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const WIDTH: f64 = 1200.0;
const ROW_H: f64 = 18.0;
const HEADER_H: f64 = 26.0;
const FONT_PX: f64 = 11.0;
/// Frames narrower than this are drawn but unlabeled.
const LABEL_MIN_PX: f64 = 35.0;
/// Frames narrower than this are culled entirely.
const CULL_PX: f64 = 0.3;

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
}

/// Deterministic warm color from a frame name (FNV-1a hash spread over
/// the classic red/orange flamegraph band).
fn color(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let r = 205 + (h % 50) as u32;
    let g = 60 + ((h >> 8) % 130) as u32;
    let b = ((h >> 16) % 50) as u32;
    format!("rgb({r},{g},{b})")
}

struct Frame<'a> {
    path: &'a str,
    node: &'a ProfileNode,
    x: f64,
    w: f64,
    depth: usize,
}

/// Renders the profile as a flamegraph SVG. With `standalone` set the
/// document carries the SVG namespace declaration (required for
/// browsers to render a bare `.svg` file); without it the markup is
/// suitable for inlining into the dashboard's HTML, which forbids
/// external references entirely.
pub fn flamegraph_svg(profile: &Profile, title: &str, standalone: bool) -> String {
    // Children grouped under the nearest recorded ancestor, in path
    // order (deterministic left-to-right packing).
    let mut children: BTreeMap<Option<&str>, Vec<&str>> = BTreeMap::new();
    for path in profile.nodes.keys() {
        children
            .entry(profile.parent_of(path))
            .or_default()
            .push(path);
    }
    let scale_ns = profile.root_total_ns().max(1.0);
    let px_per_ns = WIDTH / scale_ns;

    // Depth-first placement: each child occupies total_ns-proportional
    // width packed from its parent's left edge.
    let mut frames: Vec<Frame> = Vec::with_capacity(profile.nodes.len());
    let mut stack: Vec<(&str, f64, usize)> = Vec::new();
    let mut x = 0.0;
    for root in children.get(&None).into_iter().flatten() {
        stack.push((root, x, 0));
        x += profile.nodes[*root].total_ns * px_per_ns;
    }
    // Re-walk depth-first so children are placed after their parent.
    let mut ordered: Vec<(&str, f64, usize)> = Vec::new();
    stack.reverse();
    while let Some((path, x0, depth)) = stack.pop() {
        ordered.push((path, x0, depth));
        // Each child's x is fixed here (packed left-to-right from the
        // parent's left edge), so stack processing order is free.
        let mut cx = x0;
        if let Some(kids) = children.get(&Some(path)) {
            for kid in kids {
                stack.push((kid, cx, depth + 1));
                cx += profile.nodes[*kid].total_ns * px_per_ns;
            }
        }
    }
    let mut max_depth = 0;
    for (path, x0, depth) in ordered {
        let node = &profile.nodes[path];
        let w = node.total_ns * px_per_ns;
        if w < CULL_PX {
            continue;
        }
        max_depth = max_depth.max(depth);
        frames.push(Frame {
            path,
            node,
            x: x0,
            w,
            depth,
        });
    }

    let height = HEADER_H + ROW_H * (max_depth + 1) as f64 + 4.0;
    let mut s = String::with_capacity(4096 + 256 * frames.len());
    let xmlns = if standalone {
        " xmlns=\"http://www.w3.org/2000/svg\""
    } else {
        ""
    };
    let _ = write!(
        s,
        "<svg{xmlns} width=\"{WIDTH:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH:.0} {height:.0}\" \
         style=\"font:{FONT_PX:.0}px monospace;background:#fdf6e3\">"
    );
    s.push_str("<text x=\"6\" y=\"17\" style=\"font-weight:bold\">");
    esc(&mut s, title);
    let _ = write!(
        s,
        " — {:.2} ms total{}</text>",
        scale_ns / 1e6,
        if profile.alloc_tracking {
            ""
        } else {
            " (no alloc tracking)"
        }
    );

    for f in &frames {
        let y = HEADER_H + ROW_H * f.depth as f64;
        let pct = 100.0 * f.node.total_ns / scale_ns;
        let _ = write!(
            s,
            "<g><rect x=\"{:.2}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
             fill=\"{}\" stroke=\"#fdf6e3\" stroke-width=\"0.5\"><title>",
            f.x,
            f.w.max(CULL_PX),
            ROW_H - 1.0,
            color(f.path.rsplit('/').next().unwrap_or(f.path)),
        );
        esc(&mut s, f.path);
        let _ = write!(
            s,
            "\ncalls {}  total {:.3} ms ({pct:.1}%)  self {:.3} ms\n\
             p50 {:.1} us  p95 {:.1} us  alloc {:.1} kB (self {:.1} kB, {} allocs)",
            f.node.calls as u64,
            f.node.total_ns / 1e6,
            f.node.self_ns / 1e6,
            f.node.p50_ns / 1e3,
            f.node.p95_ns / 1e3,
            f.node.alloc_bytes / 1024.0,
            f.node.self_alloc_bytes / 1024.0,
            f.node.alloc_count as u64,
        );
        s.push_str("</title></rect>");
        if f.w >= LABEL_MIN_PX {
            let name = f.path.rsplit('/').next().unwrap_or(f.path);
            let max_chars = ((f.w - 6.0) / (FONT_PX * 0.62)) as usize;
            let shown: String = if name.len() > max_chars {
                name.chars()
                    .take(max_chars.saturating_sub(1))
                    .chain("…".chars())
                    .collect()
            } else {
                name.to_string()
            };
            let _ = write!(
                s,
                "<text x=\"{:.2}\" y=\"{:.1}\" fill=\"#222\">",
                f.x + 3.0,
                y + ROW_H - 5.5
            );
            esc(&mut s, &shown);
            s.push_str("</text>");
        }
        s.push_str("</g>");
    }
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileNode;

    fn node(total_ms: f64, self_ms: f64) -> ProfileNode {
        ProfileNode {
            calls: 3.0,
            total_ns: total_ms * 1e6,
            self_ns: self_ms * 1e6,
            max_ns: total_ms * 1e6,
            p50_ns: 1000.0,
            p95_ns: 2000.0,
            alloc_bytes: 4096.0,
            alloc_count: 4.0,
            self_alloc_bytes: 2048.0,
            self_alloc_count: 2.0,
        }
    }

    fn sample() -> Profile {
        let mut p = Profile {
            label: "run".into(),
            alloc_tracking: true,
            nodes: BTreeMap::new(),
        };
        p.nodes.insert("flow".into(), node(100.0, 10.0));
        p.nodes.insert("flow/solve".into(), node(70.0, 70.0));
        p.nodes.insert("flow/sta".into(), node(20.0, 20.0));
        p.nodes.insert("bench".into(), node(50.0, 50.0));
        p
    }

    #[test]
    fn standalone_svg_is_wellformed_and_labelled() {
        let svg = flamegraph_svg(&sample(), "tiny flow", true);
        assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("tiny flow"));
        assert!(svg.contains("<title>flow/solve"));
        // One rect per node (none culled at this scale).
        assert_eq!(svg.matches("<rect").count(), 4);
        // Tooltips carry the self/alloc attribution.
        assert!(svg.contains("self 70.000 ms"));
        assert!(svg.contains("alloc 4.0 kB"));
        // No scripts, no external fetches beyond the namespace decl.
        assert!(!svg.contains("<script"));
        assert_eq!(svg.matches("http").count(), 1);
    }

    #[test]
    fn inline_variant_has_no_external_references() {
        let svg = flamegraph_svg(&sample(), "embedded", false);
        for forbidden in ["http://", "https://", "<script", "<link"] {
            assert!(!svg.contains(forbidden), "external ref {forbidden:?}");
        }
    }

    #[test]
    fn children_pack_within_the_parent_row() {
        let svg = flamegraph_svg(&sample(), "t", true);
        // Roots pack in path order on a 150 ms scale (8 px/ms): bench
        // (50 ms) at x=0, flow (100 ms) at x=400; flow's children pack
        // from its left edge on the next row.
        assert!(svg.contains("x=\"0.00\" y=\"26.0\""), "bench at origin");
        assert!(svg.contains("x=\"400.00\" y=\"26.0\""), "flow after bench");
        assert!(
            svg.contains("x=\"400.00\" y=\"44.0\""),
            "flow/solve under flow"
        );
        assert!(
            svg.contains("x=\"960.00\" y=\"44.0\""),
            "sta packed after solve"
        );
    }

    #[test]
    fn colors_are_deterministic() {
        assert_eq!(color("solve"), color("solve"));
        assert_ne!(color("solve"), color("sta"));
    }
}
