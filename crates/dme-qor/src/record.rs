//! Normalized QoR history records.
//!
//! A [`QorRecord`] is the flat, comparison-ready distillation of one run
//! manifest: identity metadata (git SHA, binary, profile, threads),
//! per-stage wall times in milliseconds, the counter tallies worth
//! trending (solver iterations, dosePl filter dispositions), and the
//! manifest's `qor` section verbatim. Records serialize as one JSON
//! object per line so a history file is append-only and mergeable.

use dme_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Version of the history-line layout, stamped as `"schema_version"` on
/// every line; bumped whenever the record changes shape.
pub const QOR_HISTORY_SCHEMA_VERSION: u32 = 1;

/// One normalized run: the unit of the QoR history.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QorRecord {
    /// Unix timestamp of ingestion, seconds (0 when unknown).
    pub ts_s: f64,
    /// Git commit the run was built from (`"unknown"` when absent).
    pub git_sha: String,
    /// Binary that produced the manifest (`dmeopt`, `table4`, …).
    pub bin: String,
    /// Subcommand, when the binary has one (`flow`, `optimize`, …).
    pub command: String,
    /// Design profile (`tiny`, `aes65`, …) when recorded.
    pub profile: String,
    /// Worker-pool width the run used.
    pub threads: f64,
    /// Whether the `parallel` feature was compiled in.
    pub parallel: bool,
    /// Run status from the manifest (`"ok"`, `"panicked"`, or empty for
    /// manifests predating the status field).
    pub status: String,
    /// Per-span total wall time, milliseconds, keyed by span path.
    pub stages_ms: BTreeMap<String, f64>,
    /// Counter values (solver iterations, dosePl tallies, …).
    pub counters: BTreeMap<String, f64>,
    /// The manifest's `qor` section: ΔLeakage, achieved T, WNS, swap
    /// counts — the metrics the paper's tables report.
    pub qor: BTreeMap<String, f64>,
}

fn meta_str(meta: &Value, key: &str) -> String {
    meta.get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Normalizes a run-manifest JSON document (schema v1, v2 or v3) into
/// a [`QorRecord`].
///
/// # Errors
///
/// Returns a description of the first structural problem: unparseable
/// JSON, a missing/unsupported `schema_version`, or missing sections.
pub fn normalize_manifest(text: &str) -> Result<QorRecord, String> {
    let doc = json::parse(text).map_err(|e| format!("manifest does not parse: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("manifest missing schema_version")?;
    if !(version == 1.0 || version == 2.0 || version == 3.0) {
        return Err(format!("unsupported manifest schema_version {version}"));
    }
    let meta = doc.get("meta").ok_or("manifest missing meta")?;
    let spans = doc
        .get("spans")
        .and_then(Value::as_object)
        .ok_or("manifest missing spans")?;
    let counters = doc
        .get("counters")
        .and_then(Value::as_object)
        .ok_or("manifest missing counters")?;

    let mut rec = QorRecord {
        git_sha: {
            let s = meta_str(meta, "git_sha");
            if s.is_empty() {
                "unknown".to_string()
            } else {
                s
            }
        },
        bin: meta_str(meta, "bin"),
        command: meta_str(meta, "command"),
        profile: meta_str(meta, "profile"),
        threads: meta.get("threads").and_then(Value::as_f64).unwrap_or(0.0),
        parallel: meta.get("feature_parallel") == Some(&Value::Bool(true)),
        status: meta_str(meta, "status"),
        ..QorRecord::default()
    };
    for (path, st) in spans {
        if let Some(total_ns) = st.get("total_ns").and_then(Value::as_f64) {
            rec.stages_ms.insert(path.clone(), total_ns / 1.0e6);
        }
    }
    for (name, v) in counters {
        if let Some(x) = v.as_f64() {
            rec.counters.insert(name.clone(), x);
        }
    }
    if let Some(qor) = doc.get("qor").and_then(Value::as_object) {
        for (k, v) in qor {
            if let Some(x) = v.as_f64() {
                rec.qor.insert(k.clone(), x);
            }
        }
    }
    Ok(rec)
}

fn write_map(out: &mut String, map: &BTreeMap<String, f64>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, k);
        out.push(':');
        json::write_f64(out, *v);
    }
    out.push('}');
}

impl QorRecord {
    /// Serializes the record as one JSON history line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(s, "{{\"schema_version\":{QOR_HISTORY_SCHEMA_VERSION}");
        s.push_str(",\"ts_s\":");
        json::write_f64(&mut s, self.ts_s);
        for (key, val) in [
            ("git_sha", &self.git_sha),
            ("bin", &self.bin),
            ("command", &self.command),
            ("profile", &self.profile),
            ("status", &self.status),
        ] {
            let _ = write!(s, ",\"{key}\":");
            json::write_escaped(&mut s, val);
        }
        s.push_str(",\"threads\":");
        json::write_f64(&mut s, self.threads);
        let _ = write!(s, ",\"parallel\":{}", self.parallel);
        s.push_str(",\"stages_ms\":");
        write_map(&mut s, &self.stages_ms);
        s.push_str(",\"counters\":");
        write_map(&mut s, &self.counters);
        s.push_str(",\"qor\":");
        write_map(&mut s, &self.qor);
        s.push('}');
        s
    }

    /// Reconstructs a record from a parsed history line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<QorRecord, String> {
        let version = v
            .get("schema_version")
            .and_then(Value::as_f64)
            .ok_or("history line missing schema_version")?;
        if version != f64::from(QOR_HISTORY_SCHEMA_VERSION) {
            return Err(format!("unsupported history schema_version {version}"));
        }
        let read_map = |key: &str| -> Result<BTreeMap<String, f64>, String> {
            let obj = v
                .get(key)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("history line missing object {key:?}"))?;
            Ok(obj
                .iter()
                .filter_map(|(k, val)| val.as_f64().map(|x| (k.clone(), x)))
                .collect())
        };
        Ok(QorRecord {
            ts_s: v.get("ts_s").and_then(Value::as_f64).unwrap_or(0.0),
            git_sha: meta_str(v, "git_sha"),
            bin: meta_str(v, "bin"),
            command: meta_str(v, "command"),
            profile: meta_str(v, "profile"),
            threads: v.get("threads").and_then(Value::as_f64).unwrap_or(0.0),
            parallel: v.get("parallel") == Some(&Value::Bool(true)),
            status: meta_str(v, "status"),
            stages_ms: read_map("stages_ms")?,
            counters: read_map("counters")?,
            qor: read_map("qor")?,
        })
    }

    /// A short human label for the record (`git_sha bin/command profile`).
    pub fn label(&self) -> String {
        let mut s = self.git_sha.clone();
        if !self.bin.is_empty() {
            s.push(' ');
            s.push_str(&self.bin);
        }
        if !self.command.is_empty() {
            s.push('/');
            s.push_str(&self.command);
        }
        if !self.profile.is_empty() {
            let _ = write!(s, " ({})", self.profile);
        }
        s
    }
}

/// Parses a JSONL history file's content into records, in file order.
/// Blank lines are skipped; any malformed line is an error (a corrupted
/// history should fail loudly, not silently shrink the baseline).
///
/// # Errors
///
/// Returns the offending line number and the parse problem.
pub fn parse_history(text: &str) -> Result<Vec<QorRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("history line {}: {e}", lineno + 1))?;
        out.push(
            QorRecord::from_value(&v).map_err(|e| format!("history line {}: {e}", lineno + 1))?,
        );
    }
    Ok(out)
}

/// Appends one record to the JSONL history at `path`, creating the file
/// (and its parent directory) if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_history(path: &Path, record: &QorRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.to_json_line())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_manifest() -> String {
        concat!(
            "{\"schema_version\":2,",
            "\"meta\":{\"bin\":\"dmeopt\",\"command\":\"flow\",\"profile\":\"tiny\",",
            "\"git_sha\":\"abc1234\",\"threads\":4,\"feature_parallel\":true,\"status\":\"ok\"},",
            "\"qor\":{\"flow/delta_leakage_uw\":-12.5,\"flow/final_mct_ns\":1.875,",
            "\"flow/wns_ns\":0.125,\"dosepl/swaps_accepted\":7},",
            "\"spans\":{\"flow\":{\"count\":1,\"total_ns\":2000000,\"max_ns\":2000000},",
            "\"flow/dmopt\":{\"count\":1,\"total_ns\":1500000,\"max_ns\":1500000}},",
            "\"counters\":{\"qp/ipm_iterations\":18,\"dosepl/swaps_accepted\":7},",
            "\"histograms\":{},\"records\":{}}"
        )
        .to_string()
    }

    #[test]
    fn normalization_extracts_every_section() {
        let rec = normalize_manifest(&sample_manifest()).expect("normalizes");
        assert_eq!(rec.git_sha, "abc1234");
        assert_eq!(rec.bin, "dmeopt");
        assert_eq!(rec.command, "flow");
        assert_eq!(rec.profile, "tiny");
        assert_eq!(rec.threads, 4.0);
        assert!(rec.parallel);
        assert_eq!(rec.status, "ok");
        assert_eq!(rec.stages_ms["flow"], 2.0);
        assert_eq!(rec.stages_ms["flow/dmopt"], 1.5);
        assert_eq!(rec.counters["qp/ipm_iterations"], 18.0);
        assert_eq!(rec.qor["flow/delta_leakage_uw"], -12.5);
        assert_eq!(rec.qor["flow/wns_ns"], 0.125);
    }

    #[test]
    fn v1_manifest_without_qor_still_normalizes() {
        let text = sample_manifest()
            .replace("\"schema_version\":2", "\"schema_version\":1")
            .replace(
                "\"qor\":{\"flow/delta_leakage_uw\":-12.5,\"flow/final_mct_ns\":1.875,\
                 \"flow/wns_ns\":0.125,\"dosepl/swaps_accepted\":7},",
                "",
            );
        let rec = normalize_manifest(&text).expect("v1 normalizes");
        assert!(rec.qor.is_empty());
        assert_eq!(rec.stages_ms.len(), 2);
    }

    #[test]
    fn history_line_round_trips() {
        let mut rec = normalize_manifest(&sample_manifest()).expect("normalizes");
        rec.ts_s = 1_700_000_000.5;
        let line = rec.to_json_line();
        let back = QorRecord::from_value(&json::parse(&line).expect("line parses"))
            .expect("record parses");
        assert_eq!(rec, back);
    }

    #[test]
    fn history_parse_rejects_corruption() {
        assert!(parse_history("{\"schema_version\":1").is_err());
        assert!(parse_history("{\"schema_version\":99,\"stages_ms\":{}}").is_err());
        assert!(parse_history("").expect("empty ok").is_empty());
    }

    #[test]
    fn append_and_parse_history_file() {
        let dir = std::env::temp_dir().join(format!("dme_qor_hist_{}", std::process::id()));
        let path = dir.join("h.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = normalize_manifest(&sample_manifest()).expect("normalizes");
        append_history(&path, &rec).expect("append 1");
        append_history(&path, &rec).expect("append 2");
        let text = std::fs::read_to_string(&path).expect("readable");
        let recs = parse_history(&text).expect("parses");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], rec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
