//! Terminal rendering for live run snapshots (`dmeopt watch`).
//!
//! Consumes the schema-versioned snapshot JSON the `dme-obs` publisher
//! writes (see `dme_obs::snapshot`) and renders one fixed-width text
//! frame: run status line, per-thread open-span stacks with live
//! elapsed times, the stage tree with cumulative/self wall time and
//! recent-duration sparklines from the event stream, headline rates
//! (swaps/s, IPM iters/s), the latest dosePl round and IPM iteration
//! rows, and any watchdog-stalled stages. Pure string → string so the
//! frame is unit-testable; the CLI owns the refresh loop and terminal
//! control.

use dme_obs::json::{self, Value};
use std::fmt::Write as _;

/// Snapshot schema versions this renderer understands.
pub const SUPPORTED_SNAPSHOT_SCHEMA: u32 = 1;

const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Min–max normalized unicode sparkline of `values` (empty string for
/// fewer than two points).
pub fn text_sparkline(values: &[f64]) -> String {
    if values.len() < 2 {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if (hi - lo).abs() < 1e-300 {
        1.0
    } else {
        hi - lo
    };
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            SPARK_GLYPHS[idx.min(7)]
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_rate(per_s: f64) -> String {
    if per_s >= 1e6 {
        format!("{:.2}M/s", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.1}k/s", per_s / 1e3)
    } else {
        format!("{per_s:.1}/s")
    }
}

fn f64_of(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Renders one terminal frame from snapshot JSON text.
///
/// # Errors
///
/// Returns a description when the text is not valid JSON or carries an
/// unsupported `schema_version`.
pub fn render_snapshot(text: &str) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("snapshot parse error: {e}"))?;
    let version = f64_of(&doc, "schema_version").unwrap_or(0.0) as u32;
    if version != SUPPORTED_SNAPSHOT_SCHEMA {
        return Err(format!(
            "unsupported snapshot schema_version {version} (expected {SUPPORTED_SNAPSHOT_SCHEMA})"
        ));
    }
    let status = doc.get("status").and_then(Value::as_str).unwrap_or("?");
    let seq = f64_of(&doc, "seq").unwrap_or(0.0) as u64;
    let ts_s = f64_of(&doc, "ts_us").unwrap_or(0.0) / 1e6;

    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        "dme live telemetry — status {status} · snapshot #{seq} · t+{ts_s:.1}s"
    );
    if let Some(stream) = doc.get("stream") {
        let events = f64_of(stream, "events").unwrap_or(0.0) as u64;
        let dropped = f64_of(stream, "dropped").unwrap_or(0.0) as u64;
        let _ = write!(out, "stream: {events} events");
        if dropped > 0 {
            let _ = write!(out, " ({dropped} dropped)");
        }
        if let Some(alloc) = doc.get("alloc") {
            let mb = f64_of(alloc, "bytes").unwrap_or(0.0) / 1e6;
            let _ = write!(out, " · alloc {mb:.1} MB");
        }
        out.push('\n');
    }

    // Watchdog verdicts first: they are the reason to be watching.
    if let Some(stalled) = doc.get("stalled").and_then(Value::as_array) {
        for s in stalled {
            let path = s.get("path").and_then(Value::as_str).unwrap_or("?");
            let thread = s.get("thread").and_then(Value::as_str).unwrap_or("?");
            let open_ms = f64_of(s, "open_ms").unwrap_or(0.0);
            let p95_ms = f64_of(s, "baseline_p95_ms").unwrap_or(0.0);
            let _ = writeln!(
                out,
                "!! STALLED {path} on {thread}: open {} vs baseline p95 {}",
                fmt_ns(open_ms * 1e6),
                fmt_ns(p95_ms * 1e6)
            );
        }
    }

    // Per-thread open-span stacks.
    if let Some(threads) = doc.get("threads").and_then(Value::as_array) {
        for t in threads {
            let label = t.get("label").and_then(Value::as_str).unwrap_or("?");
            let stack = t.get("stack").and_then(Value::as_array);
            let Some(stack) = stack else { continue };
            if stack.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n[{label}] open:");
            for (depth, frame) in stack.iter().enumerate() {
                let path = frame.get("path").and_then(Value::as_str).unwrap_or("?");
                let open_us = f64_of(frame, "open_us").unwrap_or(0.0);
                let name = path.rsplit('/').next().unwrap_or(path);
                let _ = writeln!(
                    out,
                    "  {}{name}  {}",
                    "  ".repeat(depth),
                    fmt_ns(open_us * 1e3)
                );
            }
        }
    }

    // Stage tree with sparklines from the recent-duration windows.
    let recent = doc.get("recent_ns");
    if let Some(stages) = doc.get("stages").and_then(Value::as_array) {
        if !stages.is_empty() {
            out.push_str("\nstages:\n");
        }
        for st in stages {
            let path = st.get("path").and_then(Value::as_str).unwrap_or("?");
            let calls = f64_of(st, "calls").unwrap_or(0.0) as u64;
            let total_ns = f64_of(st, "total_ns").unwrap_or(0.0);
            let self_ns = f64_of(st, "self_ns").unwrap_or(0.0);
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let spark = recent
                .and_then(|r| r.get(path))
                .and_then(Value::as_array)
                .map(|win| {
                    let vals: Vec<f64> = win.iter().filter_map(Value::as_f64).collect();
                    text_sparkline(&vals)
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<32} {:>7}x  total {:>9}  self {:>9}  {spark}",
                format!("{}{}", "  ".repeat(depth), name),
                calls,
                fmt_ns(total_ns),
                fmt_ns(self_ns)
            );
        }
    }

    // Headline rates: the highest-traffic counters this tick.
    if let Some(rates) = doc.get("counter_rates").and_then(Value::as_object) {
        let mut rows: Vec<(&str, f64)> = rates
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|r| (k.as_str(), r)))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if !rows.is_empty() {
            out.push_str("\nrates:\n");
            for (name, rate) in rows.iter().take(8) {
                let _ = writeln!(out, "  {name:<36} {}", fmt_rate(*rate));
            }
        }
    }

    // Latest dosePl round and IPM iteration, if the run emitted them.
    if let Some(dp) = doc.get("dosepl") {
        let round = f64_of(dp, "round").unwrap_or(0.0) as u64;
        let accepted = f64_of(dp, "accepted").unwrap_or(0.0) as u64;
        let swaps = f64_of(dp, "swaps").unwrap_or(0.0) as u64;
        let mct = f64_of(dp, "mct_ns").unwrap_or(0.0);
        let _ = write!(
            out,
            "\ndosepl: round {round} · {accepted}/{swaps} swaps accepted"
        );
        if let Some(rate) = f64_of(dp, "accept_rate") {
            let _ = write!(out, " ({:.0}%)", rate * 100.0);
        }
        let _ = writeln!(out, " · MCT {mct:.4} ns");
    }
    if let Some(ipm) = doc.get("ipm") {
        let iter = f64_of(ipm, "iter").unwrap_or(0.0) as u64;
        let mu = f64_of(ipm, "mu").unwrap_or(0.0);
        let rp = f64_of(ipm, "rp_inf").unwrap_or(0.0);
        let rd = f64_of(ipm, "rd_inf").unwrap_or(0.0);
        let _ = writeln!(
            out,
            "ipm: iter {iter} · mu {mu:.2e} · rp {rp:.2e} · rd {rd:.2e}"
        );
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "schema_version": 1, "seq": 4, "ts_us": 2500000, "status": "running",
        "threads": [{"label": "main", "alloc_bytes": 1048576, "alloc_count": 10,
                     "stack": [{"path": "flow", "open_us": 2400000},
                               {"path": "flow/dosepl", "open_us": 900000}]}],
        "stages": [{"path": "flow", "calls": 0, "total_ns": 0, "self_ns": 0,
                    "p95_ns": 0, "alloc_bytes": 0},
                   {"path": "flow/dmopt", "calls": 1, "total_ns": 1200000000,
                    "self_ns": 50000000, "p95_ns": 1200000000, "alloc_bytes": 0}],
        "counters": {"dosepl/swaps_attempted": 500, "qp/ipm_iterations": 62},
        "counter_rates": {"dosepl/swaps_attempted": 120.5, "qp/ipm_iterations": 9.1},
        "dosepl": {"round": 2, "candidates": 40, "swaps": 10, "accepted": 4,
                   "mct_ns": 2.41, "accept_rate": 0.4},
        "ipm": {"iter": 12, "mu": 1.5e-7, "rp_inf": 2e-9, "rd_inf": 4e-9},
        "alloc": {"bytes": 1048576, "count": 10},
        "stream": {"events": 4100, "dropped": 3},
        "recent_ns": {"flow/dmopt": [100, 200, 300, 250]},
        "stalled": [{"thread": "main", "path": "flow/dosepl", "open_ms": 900.0,
                     "baseline_p95_ms": 50.0, "mult": 8.0}]
    }"#;

    #[test]
    fn renders_every_section() {
        let frame = render_snapshot(SAMPLE).expect("renders");
        assert!(frame.contains("status running"));
        assert!(frame.contains("snapshot #4"));
        assert!(frame.contains("STALLED flow/dosepl"));
        assert!(frame.contains("[main] open:"));
        assert!(frame.contains("dosepl  900.0ms"), "frame:\n{frame}");
        assert!(frame.contains("stages:"));
        assert!(frame.contains("dmopt"));
        assert!(frame.contains("rates:"));
        assert!(frame.contains("dosepl/swaps_attempted"));
        assert!(frame.contains("120.5/s"));
        assert!(frame.contains("round 2"));
        assert!(frame.contains("4/10 swaps accepted (40%)"));
        assert!(frame.contains("ipm: iter 12"));
        assert!(frame.contains("4100 events"));
        assert!(frame.contains("(3 dropped)"));
        // Sparkline from recent_ns made it in.
        assert!(
            frame.contains('▁') && frame.contains('█'),
            "frame:\n{frame}"
        );
    }

    #[test]
    fn rejects_garbage_and_wrong_schema() {
        assert!(render_snapshot("{not json").is_err());
        assert!(render_snapshot("{\"schema_version\": 99}").is_err());
    }

    #[test]
    fn sparkline_normalizes() {
        assert_eq!(text_sparkline(&[]), "");
        assert_eq!(text_sparkline(&[1.0]), "");
        let s = text_sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Flat series renders, it just stays at the floor.
        assert_eq!(text_sparkline(&[2.0, 2.0]).chars().count(), 2);
    }
}
