//! Parsing and differential comparison of manifest `profile` sections.
//!
//! A manifest (schema v3, see `dme-obs`) carries a `profile` section:
//! one node per span path with calls, total/self wall time, p50/p95,
//! and allocation attribution. [`parse_manifest_profile`] lifts that
//! section into a [`Profile`]; [`diff_profiles`] compares a run's
//! per-path **self** times against one or more baseline profiles with
//! the same median/MAD + relative-floor machinery the QoR gate uses
//! (self time is the right gating axis: a child regressing must not
//! flag every ancestor too). Allocation deltas ride along
//! informationally — reported, never gated, since byte tallies depend
//! on whether the producing binary had the tracking allocator
//! installed.

use crate::diff::{robust_stats, DiffReport, Direction, MetricVerdict, Verdict};
use dme_obs::json::{self, Value};
use std::collections::{BTreeMap, BTreeSet};

/// One span path's row of the profile tree, as read from a manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileNode {
    /// Completed executions.
    pub calls: f64,
    /// Total wall time, ns (inclusive of children).
    pub total_ns: f64,
    /// Wall time not accounted to any recorded child, ns.
    pub self_ns: f64,
    /// Longest single execution, ns.
    pub max_ns: f64,
    /// Median per-execution duration, ns (power-of-two resolution).
    pub p50_ns: f64,
    /// 95th-percentile per-execution duration, ns.
    pub p95_ns: f64,
    /// Bytes allocated while open (inclusive of children).
    pub alloc_bytes: f64,
    /// Allocations while open (inclusive of children).
    pub alloc_count: f64,
    /// Bytes not accounted to any recorded child.
    pub self_alloc_bytes: f64,
    /// Allocations not accounted to any recorded child.
    pub self_alloc_count: f64,
}

/// A manifest's profile section: the flat path → node map (paths are
/// `/`-separated, so the hierarchy is recoverable) plus whether the
/// producing binary actually counted allocations.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Label for reports (file name or git SHA).
    pub label: String,
    /// Whether a tracking allocator was installed and counting.
    pub alloc_tracking: bool,
    /// Span path → profile row.
    pub nodes: BTreeMap<String, ProfileNode>,
}

impl Profile {
    /// Index of the nearest ancestor path present in the map, walking
    /// `/` boundaries outward; `None` for roots.
    pub fn parent_of<'a>(&self, path: &'a str) -> Option<&'a str> {
        let mut p = path;
        while let Some(pos) = p.rfind('/') {
            p = &p[..pos];
            if self.nodes.contains_key(p) {
                return Some(p);
            }
        }
        None
    }

    /// Sum of `total_ns` over root nodes — the flamegraph x-axis scale.
    pub fn root_total_ns(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|(p, _)| self.parent_of(p).is_none())
            .map(|(_, n)| n.total_ns)
            .sum()
    }
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

/// Parses the `profile` section out of a run-manifest JSON document.
///
/// # Errors
///
/// Returns a description of the first structural problem: unparseable
/// JSON, a pre-v3 `schema_version` (no profile section existed), or a
/// missing/malformed `profile` section.
pub fn parse_manifest_profile(text: &str, label: &str) -> Result<Profile, String> {
    let doc = json::parse(text).map_err(|e| format!("manifest does not parse: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("manifest missing schema_version")?;
    if version < 3.0 {
        return Err(format!(
            "manifest schema_version {version} predates the profile section (needs >= 3)"
        ));
    }
    profile_from_manifest_value(&doc, label)
        .ok_or_else(|| "manifest missing profile section".into())
}

/// Lifts the `profile` section out of an already-parsed manifest
/// document, if present (no schema-version check: absent section →
/// `None`). The dashboard uses this to decide whether to render a
/// flamegraph panel.
pub fn profile_from_manifest_value(doc: &Value, label: &str) -> Option<Profile> {
    let profile = doc.get("profile")?;
    let nodes_obj = profile.get("nodes").and_then(Value::as_object)?;
    let mut nodes = BTreeMap::new();
    for (path, n) in nodes_obj {
        nodes.insert(
            path.clone(),
            ProfileNode {
                calls: num(n, "calls"),
                total_ns: num(n, "total_ns"),
                self_ns: num(n, "self_ns"),
                max_ns: num(n, "max_ns"),
                p50_ns: num(n, "p50_ns"),
                p95_ns: num(n, "p95_ns"),
                alloc_bytes: num(n, "alloc_bytes"),
                alloc_count: num(n, "alloc_count"),
                self_alloc_bytes: num(n, "self_alloc_bytes"),
                self_alloc_count: num(n, "self_alloc_count"),
            },
        );
    }
    Some(Profile {
        label: label.to_string(),
        alloc_tracking: profile.get("alloc_tracking") == Some(&Value::Bool(true)),
        nodes,
    })
}

/// Thresholding knobs for [`diff_profiles`]. Self times are wall-clock
/// measurements, so the defaults mirror the QoR gate's wall-time
/// treatment: 3×MAD with a 25% relative floor, plus an absolute floor
/// of 50 µs so sub-resolution paths never gate.
#[derive(Debug, Clone)]
pub struct ProfileDiffConfig {
    /// Multiple of the baseline MAD a deviation must exceed to count.
    pub k_mad: f64,
    /// Relative floor (fraction of the baseline median self time).
    pub time_min_rel: f64,
    /// Absolute floor, ns.
    pub min_abs_ns: f64,
    /// Relative floor for the informational allocation metrics.
    pub alloc_min_rel: f64,
    /// Number of most-recent baseline profiles considered.
    pub window: usize,
}

impl Default for ProfileDiffConfig {
    fn default() -> Self {
        Self {
            k_mad: 3.0,
            time_min_rel: 0.25,
            min_abs_ns: 50_000.0,
            alloc_min_rel: 0.10,
            window: 20,
        }
    }
}

/// Compares a run's profile against the last [`ProfileDiffConfig::window`]
/// baseline profiles, span path by span path.
///
/// Metric names are `self_ms/<path>` (gated: exceeding the noise
/// threshold is a confirmed self-time regression) and
/// `self_alloc_kb/<path>` (informational: a regression verdict is
/// downgraded to stable, mirroring how one-thread speedups are
/// handled by the QoR gate). The result reuses [`DiffReport`], so the
/// existing markdown/dashboard renderers apply unchanged.
pub fn diff_profiles(run: &Profile, baselines: &[Profile], cfg: &ProfileDiffConfig) -> DiffReport {
    let window_start = baselines.len().saturating_sub(cfg.window.max(1));
    let window = &baselines[window_start..];

    let mut paths: BTreeSet<&str> = run.nodes.keys().map(String::as_str).collect();
    for b in window {
        paths.extend(b.nodes.keys().map(String::as_str));
    }
    let any_alloc = run.alloc_tracking || window.iter().any(|b| b.alloc_tracking);

    let mut verdicts = Vec::new();
    for path in paths {
        let value = run.nodes.get(path).map(|n| n.self_ns / 1e6);
        let samples: Vec<f64> = window
            .iter()
            .filter_map(|b| b.nodes.get(path).map(|n| n.self_ns / 1e6))
            .collect();
        verdicts.push(metric(
            format!("self_ms/{path}"),
            value,
            &samples,
            cfg.k_mad,
            cfg.time_min_rel,
            cfg.min_abs_ns / 1e6,
            false,
        ));
        if any_alloc {
            let value = run.nodes.get(path).map(|n| n.self_alloc_bytes / 1024.0);
            let samples: Vec<f64> = window
                .iter()
                .filter_map(|b| b.nodes.get(path).map(|n| n.self_alloc_bytes / 1024.0))
                .collect();
            verdicts.push(metric(
                format!("self_alloc_kb/{path}"),
                value,
                &samples,
                cfg.k_mad,
                cfg.alloc_min_rel,
                1.0,
                true,
            ));
        }
    }

    let group = |v: Verdict| match v {
        Verdict::Regressed => 0,
        Verdict::Improved => 1,
        Verdict::New => 2,
        Verdict::Missing => 3,
        Verdict::Stable => 4,
    };
    verdicts.sort_by(|a, b| {
        group(a.verdict)
            .cmp(&group(b.verdict))
            .then_with(|| a.name.cmp(&b.name))
    });

    DiffReport {
        run_label: run.label.clone(),
        baseline_label: window.last().map(|b| b.label.clone()).unwrap_or_default(),
        baseline_n: window.len(),
        verdicts,
    }
}

fn metric(
    name: String,
    value: Option<f64>,
    samples: &[f64],
    k_mad: f64,
    min_rel: f64,
    min_abs: f64,
    informational: bool,
) -> MetricVerdict {
    match (value, samples.is_empty()) {
        (None, _) => MetricVerdict {
            name,
            direction: Direction::LowerIsBetter,
            value: None,
            median: None,
            mad: None,
            worse_by: 0.0,
            threshold: 0.0,
            verdict: Verdict::Missing,
        },
        (Some(v), true) => MetricVerdict {
            name,
            direction: Direction::LowerIsBetter,
            value: Some(v),
            median: None,
            mad: None,
            worse_by: 0.0,
            threshold: 0.0,
            verdict: Verdict::New,
        },
        (Some(v), false) => {
            let (median, mad) = robust_stats(samples);
            let threshold = (k_mad * mad).max(min_rel * median.abs()).max(min_abs);
            let worse_by = v - median;
            let verdict = if worse_by > threshold {
                if informational {
                    Verdict::Stable
                } else {
                    Verdict::Regressed
                }
            } else if worse_by < -threshold {
                Verdict::Improved
            } else {
                Verdict::Stable
            };
            MetricVerdict {
                name,
                direction: Direction::LowerIsBetter,
                value: Some(v),
                median: Some(median),
                mad: Some(mad),
                worse_by,
                threshold,
                verdict,
            }
        }
    }
}

/// Renders the profile as a fixed-width text tree (children indented
/// under parents, heaviest self time first at each level) for
/// `dmeopt prof report`.
pub fn profile_tree_text(profile: &Profile) -> String {
    use std::fmt::Write as _;
    let mut children: BTreeMap<Option<&str>, Vec<&str>> = BTreeMap::new();
    for path in profile.nodes.keys() {
        children
            .entry(profile.parent_of(path))
            .or_default()
            .push(path);
    }
    for v in children.values_mut() {
        v.sort_by(|a, b| {
            let sa = profile.nodes[*a].self_ns;
            let sb = profile.nodes[*b].self_ns;
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>8} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "span", "calls", "total_ms", "self_ms", "p50_us", "p95_us", "alloc_kb"
    );
    let mut stack: Vec<(&str, usize)> = children
        .get(&None)
        .map(|roots| roots.iter().rev().map(|p| (*p, 0usize)).collect())
        .unwrap_or_default();
    while let Some((path, depth)) = stack.pop() {
        let n = &profile.nodes[path];
        let name = path.rsplit('/').next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let _ = writeln!(
            out,
            "{label:<52} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>10.1} {:>12.1}",
            n.calls as u64,
            n.total_ns / 1e6,
            n.self_ns / 1e6,
            n.p50_ns / 1e3,
            n.p95_ns / 1e3,
            n.alloc_bytes / 1024.0
        );
        if let Some(kids) = children.get(&Some(path)) {
            for k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    if !profile.alloc_tracking {
        out.push_str("(alloc columns are zero: no tracking allocator installed in the run)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(pairs: &[(&str, f64)]) -> Profile {
        let mut p = Profile {
            label: "test".into(),
            alloc_tracking: false,
            nodes: BTreeMap::new(),
        };
        for &(path, self_ms) in pairs {
            p.nodes.insert(
                path.to_string(),
                ProfileNode {
                    calls: 1.0,
                    total_ns: self_ms * 1e6,
                    self_ns: self_ms * 1e6,
                    ..ProfileNode::default()
                },
            );
        }
        p
    }

    #[test]
    fn parse_rejects_pre_v3_manifests() {
        let err = parse_manifest_profile("{\"schema_version\":2}", "x").unwrap_err();
        assert!(err.contains("predates"), "{err}");
    }

    #[test]
    fn parse_reads_nodes_and_tracking_flag() {
        let text = "{\"schema_version\":3,\"profile\":{\"alloc_tracking\":true,\"nodes\":{\
                    \"a\":{\"calls\":2,\"total_ns\":100,\"self_ns\":40,\"max_ns\":80,\
                    \"p50_ns\":50,\"p95_ns\":90,\"alloc_bytes\":1024,\"alloc_count\":3,\
                    \"self_alloc_bytes\":512,\"self_alloc_count\":1},\
                    \"a/b\":{\"calls\":1,\"total_ns\":60,\"self_ns\":60,\"max_ns\":60,\
                    \"p50_ns\":60,\"p95_ns\":60,\"alloc_bytes\":512,\"alloc_count\":2,\
                    \"self_alloc_bytes\":512,\"self_alloc_count\":2}}}}";
        let p = parse_manifest_profile(text, "run").unwrap();
        assert!(p.alloc_tracking);
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.nodes["a"].self_ns, 40.0);
        assert_eq!(p.parent_of("a/b"), Some("a"));
        assert_eq!(p.root_total_ns(), 100.0);
    }

    #[test]
    fn self_replay_diff_is_clean() {
        let p = prof(&[("flow", 5.0), ("flow/solve", 80.0), ("flow/sta", 12.0)]);
        let report = diff_profiles(&p, std::slice::from_ref(&p), &ProfileDiffConfig::default());
        assert!(!report.has_regression(), "{:?}", report.regressions());
        assert_eq!(report.count(Verdict::New), 0);
        assert_eq!(report.count(Verdict::Missing), 0);
    }

    #[test]
    fn doubled_self_time_in_one_path_gates() {
        let base = prof(&[("flow", 5.0), ("flow/solve", 80.0), ("flow/sta", 12.0)]);
        let run = prof(&[("flow", 5.0), ("flow/solve", 160.0), ("flow/sta", 12.0)]);
        let report = diff_profiles(&run, &[base], &ProfileDiffConfig::default());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].name, "self_ms/flow/solve");
    }

    #[test]
    fn sub_resolution_paths_never_gate() {
        // 20 µs median, "doubled" to 40 µs: below the 50 µs absolute
        // floor, so timer jitter on tiny spans cannot flag.
        let base = prof(&[("tick", 0.020)]);
        let run = prof(&[("tick", 0.040)]);
        let report = diff_profiles(&run, &[base], &ProfileDiffConfig::default());
        assert!(!report.has_regression());
    }

    #[test]
    fn alloc_metrics_are_informational() {
        let mut base = prof(&[("flow", 10.0)]);
        base.alloc_tracking = true;
        base.nodes.get_mut("flow").unwrap().self_alloc_bytes = 1024.0 * 100.0;
        let mut run = base.clone();
        run.nodes.get_mut("flow").unwrap().self_alloc_bytes = 1024.0 * 500.0;
        let report = diff_profiles(&run, &[base], &ProfileDiffConfig::default());
        assert!(!report.has_regression(), "alloc growth must not gate");
        assert!(report
            .verdicts
            .iter()
            .any(|m| m.name == "self_alloc_kb/flow"));
    }

    #[test]
    fn tree_text_indents_children() {
        let p = prof(&[("flow", 5.0), ("flow/solve", 80.0)]);
        let text = profile_tree_text(&p);
        assert!(text.contains("\nflow "), "{text}");
        assert!(text.contains("\n  solve"), "{text}");
    }
}
