//! End-to-end observability: runs the `dmeopt` binary with `--report`
//! and `--trace-json` and validates the manifest and event stream with
//! `dme-obs`'s own JSON parser — the acceptance check that a single CLI
//! invocation yields stage spans, per-iteration solver telemetry, and
//! dosePl accept/reject tallies.

use dme_obs::json::{parse, Value};
use std::process::Command;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dme_obs_it_{}_{name}", std::process::id()))
}

#[test]
fn flow_report_contains_stage_spans_solver_telemetry_and_tallies() {
    let report = tmp("run.json");
    let trace = tmp("trace.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_dmeopt"))
        .args([
            "flow",
            "--profile",
            "tiny",
            "--report",
            report.to_str().expect("utf8 path"),
            "--trace-json",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("dmeopt runs");
    assert!(
        out.status.success(),
        "dmeopt flow failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Stage results still reach stdout; the summary table goes to stderr.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nominal"), "stdout: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("== run summary =="), "stderr: {stderr}");

    let text = std::fs::read_to_string(&report).expect("manifest written");
    let m = parse(&text).expect("manifest parses");
    assert_eq!(m.get("schema_version").and_then(Value::as_f64), Some(3.0));

    let meta = m.get("meta").expect("meta");
    assert_eq!(meta.get("bin").and_then(Value::as_str), Some("dmeopt"));
    assert_eq!(meta.get("command").and_then(Value::as_str), Some("flow"));
    assert_eq!(meta.get("status").and_then(Value::as_str), Some("ok"));
    assert!(meta.get("threads").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0);

    // Schema v2: the QoR section carries the paper's headline metrics.
    let qor = m.get("qor").and_then(Value::as_object).expect("qor");
    for name in [
        "flow/nominal_mct_ns",
        "flow/final_mct_ns",
        "flow/delta_leakage_uw",
        "flow/wns_ns",
        "dmopt/achieved_t_ns",
        "dosepl/swaps_accepted",
        "dosepl/swaps_attempted",
    ] {
        let v = qor.get(name).and_then(Value::as_f64);
        assert!(v.is_some(), "qor metric {name:?} missing");
        assert!(v.expect("checked").is_finite(), "qor metric {name:?} NaN");
    }
    // The flow improves timing on the tiny profile, so WNS is positive.
    assert!(
        qor.get("flow/wns_ns")
            .and_then(Value::as_f64)
            .unwrap_or(-1.0)
            > 0.0
    );

    // Stage spans for place / DMopt / dosePl / signoff.
    let spans = m.get("spans").and_then(Value::as_object).expect("spans");
    for path in [
        "place",
        "golden_sta",
        "flow",
        "flow/dmopt",
        "flow/dmopt/solve",
        "flow/dosepl",
        "flow/dosepl/signoff",
    ] {
        let stats = spans.get(path).unwrap_or_else(|| panic!("span {path:?}"));
        assert!(
            stats.get("count").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0,
            "span {path:?} never closed"
        );
        let total = stats
            .get("total_ns")
            .and_then(Value::as_f64)
            .unwrap_or(-1.0);
        let max = stats.get("max_ns").and_then(Value::as_f64).unwrap_or(-1.0);
        assert!(total >= max && max >= 0.0, "span {path:?} timing");
    }

    // IPM per-iteration residual records.
    let rows = m
        .get("records")
        .and_then(|r| r.get("ipm_iter"))
        .and_then(|r| r.get("rows"))
        .and_then(Value::as_array)
        .expect("ipm_iter rows");
    assert!(!rows.is_empty(), "no IPM iterations recorded");
    for field in ["iter", "mu", "rp_inf", "rd_inf", "cg_pred", "cg_corr"] {
        assert!(rows[0].get(field).is_some(), "ipm_iter missing {field:?}");
    }

    // Schema v2 histograms carry percentile fields.
    if let Some(hists) = m.get("histograms").and_then(Value::as_object) {
        for (name, h) in hists {
            for field in ["p50", "p95", "p99"] {
                let v = h.get(field).and_then(Value::as_f64);
                assert!(v.is_some(), "histogram {name:?} missing {field}");
            }
            let p50 = h.get("p50").and_then(Value::as_f64).expect("p50");
            let p99 = h.get("p99").and_then(Value::as_f64).expect("p99");
            let max = h.get("max").and_then(Value::as_f64).expect("max");
            assert!(p50 <= p99 && p99 <= max, "histogram {name:?} ordering");
        }
    }

    // Schema v3: the profile section carries the span tree with self
    // times and allocation attribution. The dmeopt binary installs the
    // tracking allocator, so alloc_tracking must report true and the
    // flow itself must charge allocations somewhere.
    let profile = m.get("profile").expect("profile section");
    assert_eq!(
        profile
            .get("alloc_tracking")
            .map(|v| matches!(v, Value::Bool(true))),
        Some(true),
        "dmeopt installs the tracking allocator"
    );
    let nodes = profile
        .get("nodes")
        .and_then(Value::as_object)
        .expect("profile nodes");
    let flow = nodes.get("flow").expect("flow profile node");
    let total = flow.get("total_ns").and_then(Value::as_f64).expect("total");
    let own = flow.get("self_ns").and_then(Value::as_f64).expect("self");
    assert!(own <= total && own >= 0.0, "self/total invariant");
    assert!(
        flow.get("alloc_bytes")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "flow should allocate with tracking on"
    );
    // The hot-path phase spans landed in the tree.
    for path in ["flow/dmopt/solve/ipm", "flow/dosepl/round/filter"] {
        assert!(nodes.contains_key(path), "profile node {path:?} missing");
    }

    // dosePl accept/reject tallies.
    let counters = m
        .get("counters")
        .and_then(Value::as_object)
        .expect("counters");
    for name in [
        "dosepl/swaps_attempted",
        "dosepl/rejected_timing",
        "dosepl/accepted_provisional",
        "qp/ipm_iterations",
        "sta/analyze_calls",
    ] {
        assert!(counters.contains_key(name), "counter {name:?} missing");
    }

    // Every JSONL event line parses and carries the v1 envelope.
    let events = std::fs::read_to_string(&trace).expect("trace written");
    let mut n = 0;
    for line in events.lines().filter(|l| !l.trim().is_empty()) {
        let ev = parse(line).expect("event parses");
        assert_eq!(ev.get("v").and_then(Value::as_f64), Some(1.0));
        assert!(ev.get("ts_us").and_then(Value::as_f64).is_some());
        let ty = ev.get("type").and_then(Value::as_str).expect("type");
        assert!(matches!(ty, "span" | "record" | "log"), "type {ty:?}");
        n += 1;
    }
    assert!(n > 0, "trace stream is empty");

    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&trace);
}
