//! End-to-end live telemetry plane: a polling reader races the
//! snapshot publisher during a real 2 k-cell flow and must never see a
//! torn or schema-less file (atomic rename publication), the
//! panic-hook span flush must land mid-stack span stats in the
//! manifest, and the `watch` / `obs ls` front ends must render.

use dme_obs::json::{parse, Value};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dme_live_it_{}_{name}", std::process::id()))
}

/// Polls `snapshot.json` while `dmeopt flow --profile small` runs with
/// a 25 ms publisher interval. Every successful read must parse as a
/// complete schema-v1 snapshot — a torn write would fail the parse or
/// drop the envelope — and the run must publish at least three
/// snapshots, ending on `status: "final"`.
#[test]
fn snapshot_file_is_never_torn_during_a_flow() {
    let snap = tmp("snapshot.json");
    let _ = std::fs::remove_file(&snap);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dmeopt"))
        .args([
            "flow",
            "--profile",
            "small",
            "--snapshot",
            snap.to_str().expect("utf8 path"),
            "--snapshot-ms",
            "25",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("dmeopt spawns");

    let mut seqs = Vec::new();
    let mut reads = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(text) = std::fs::read_to_string(&snap) {
            reads += 1;
            // Atomic rename publication: a readable file is always a
            // whole snapshot, never a prefix of one.
            let v = parse(&text)
                .unwrap_or_else(|e| panic!("torn/invalid snapshot after {reads} reads: {e}"));
            assert_eq!(
                v.get("schema_version").and_then(Value::as_f64),
                Some(1.0),
                "snapshot missing schema envelope"
            );
            let seq = v
                .get("seq")
                .and_then(Value::as_f64)
                .expect("snapshot missing seq");
            let status = v
                .get("status")
                .and_then(Value::as_str)
                .expect("snapshot missing status")
                .to_string();
            for key in ["ts_us", "threads", "stages", "counters", "stream", "alloc"] {
                assert!(v.get(key).is_some(), "snapshot missing {key:?}");
            }
            if seqs.last() != Some(&(seq as u64)) {
                seqs.push(seq as u64);
            }
            assert!(
                matches!(status.as_str(), "running" | "final"),
                "unexpected status {status:?}"
            );
        }
        if let Some(st) = child.try_wait().expect("try_wait") {
            assert!(st.success(), "dmeopt flow failed");
            break;
        }
        assert!(Instant::now() < deadline, "flow did not finish in time");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The child has exited; the last published snapshot is the final
    // one and the sequence must have advanced monotonically.
    let text = std::fs::read_to_string(&snap).expect("final snapshot");
    let v = parse(&text).expect("final snapshot parses");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("final"));
    let last_seq = v.get("seq").and_then(Value::as_f64).expect("seq") as u64;
    if seqs.last() != Some(&last_seq) {
        seqs.push(last_seq);
    }
    assert!(
        seqs.len() >= 3,
        "expected >= 3 distinct snapshots, saw seqs {seqs:?}"
    );
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seq not monotonic: {seqs:?}"
    );
    // Final snapshot still carries live sections.
    assert!(
        v.get("stages")
            .and_then(Value::as_array)
            .is_some_and(|s| !s.is_empty()),
        "final snapshot has no stage rows"
    );
    let _ = std::fs::remove_file(&snap);
}

/// `DME_TEST_PANIC=span` panics with span `flow` still open after a
/// nested span `stage` completed. The panic hook must flush the
/// thread-local span batch, so the manifest records `flow/stage` even
/// though the stack never drained — and the publisher's last snapshot
/// must be `status: "panicked"`.
#[test]
fn panic_hook_flushes_batched_span_stats() {
    let report = tmp("panic_run.json");
    let snap = tmp("panic_snapshot.json");
    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&snap);
    let out = Command::new(env!("CARGO_BIN_EXE_dmeopt"))
        .args([
            "flow",
            "--profile",
            "tiny",
            "--report",
            report.to_str().expect("utf8 path"),
            "--snapshot",
            snap.to_str().expect("utf8 path"),
            "--snapshot-ms",
            "50",
        ])
        .env("DME_TEST_PANIC", "span")
        .output()
        .expect("dmeopt runs");
    assert!(!out.status.success(), "DME_TEST_PANIC must abort the run");

    let text = std::fs::read_to_string(&report).expect("panic manifest written");
    let m = parse(&text).expect("panic manifest parses");
    assert_eq!(
        m.get("meta")
            .and_then(|meta| meta.get("status"))
            .and_then(Value::as_str),
        Some("panicked")
    );
    // The completed nested span was still sitting in the thread-local
    // batch when the panic hit; without the hook's flush it would be
    // missing here.
    let spans = m.get("spans").and_then(Value::as_object).expect("spans");
    let stage = spans
        .get("flow/stage")
        .expect("batched span flow/stage flushed by the panic hook");
    assert_eq!(stage.get("count").and_then(Value::as_f64), Some(1.0));

    let snap_text = std::fs::read_to_string(&snap).expect("panic snapshot written");
    let v = parse(&snap_text).expect("panic snapshot parses");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("panicked"));
    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&snap);
}

/// `dmeopt watch <snapshot> --once` renders one frame from a finished
/// run's snapshot and exits cleanly.
#[test]
fn watch_once_renders_a_frame() {
    let snap = tmp("watch_snapshot.json");
    std::fs::write(
        &snap,
        concat!(
            "{\"schema_version\":1,\"seq\":4,\"ts_us\":1500000,\"status\":\"final\",",
            "\"threads\":[{\"label\":\"main\",\"alloc_bytes\":1024,\"alloc_count\":2,",
            "\"stack\":[]}],",
            "\"stages\":[{\"path\":\"flow\",\"calls\":1,\"total_ns\":1200000000,",
            "\"self_ns\":200000000,\"p95_ns\":1200000000,\"alloc_bytes\":4096}],",
            "\"counters\":{\"dosepl/swaps_attempted\":12},",
            "\"counter_rates\":{\"dosepl/swaps_attempted\":40.0},",
            "\"dosepl\":{\"round\":2,\"candidates\":30,\"swaps\":12,\"accepted\":5,",
            "\"mct_ns\":1.875,\"accept_rate\":0.4166},",
            "\"alloc\":{\"bytes\":1024,\"count\":2},",
            "\"stream\":{\"events\":128,\"dropped\":0},",
            "\"recent_ns\":{\"flow\":[1200000000]},\"stalled\":[]}",
        ),
    )
    .expect("snapshot written");
    let out = Command::new(env!("CARGO_BIN_EXE_dmeopt"))
        .args(["watch", snap.to_str().expect("utf8 path"), "--once"])
        .output()
        .expect("dmeopt watch runs");
    assert!(
        out.status.success(),
        "watch --once failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["status final", "snapshot #4", "flow", "5/12 swaps accepted"] {
        assert!(
            stdout.contains(needle),
            "watch output missing {needle:?}: {stdout}"
        );
    }
    let _ = std::fs::remove_file(&snap);
}

/// `dmeopt obs ls` prints the metric catalog with kinds and
/// descriptions.
#[test]
fn obs_ls_prints_the_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_dmeopt"))
        .args(["obs", "ls"])
        .output()
        .expect("dmeopt obs ls runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "counter",
        "span",
        "record",
        "histogram",
        "dosepl/swaps_attempted",
        "qp/ipm_iterations",
        "flow/dmopt/solve/ipm",
        "dosepl_round",
    ] {
        assert!(stdout.contains(needle), "catalog missing {needle:?}");
    }
}
