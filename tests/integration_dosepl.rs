//! Cross-crate integration: the full Fig. 7 flow with dosePl cell
//! swapping, plus the manufacturing-side artifacts (path enumeration for
//! Fig. 10, actuator realizability).

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dme_sta::{analyze, report, top_k_paths, GeometryAssignment};
use dmeopt::flow::{run, FlowConfig};
use dmeopt::{DmoptConfig, DoseplConfig, Objective, OptContext};

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn full_flow_stays_legal_and_improves() {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let cfg = FlowConfig {
        dmopt: DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
        dosepl: Some(DoseplConfig {
            top_k: 500,
            rounds: 5,
            swaps_per_round: 3,
            ..DoseplConfig::default()
        }),
    };
    let r = run(&ctx, &cfg).expect("flow");
    let dp = r.dosepl.as_ref().expect("dosePl ran");
    // dosePl never makes golden timing worse than its input.
    assert!(dp.golden_after.mct_ns <= dp.golden_before.mct_ns + 1e-12);
    // The final placement is legal.
    dp.placement
        .check_legal(&design.netlist, &lib)
        .expect("legal placement");
    // The whole flow improves on nominal timing at bounded leakage.
    let fin = r.final_summary();
    assert!(fin.mct_ns < r.nominal.mct_ns);
    assert!(fin.leakage_uw <= r.nominal.leakage_uw * 1.05);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn dosepl_engines_agree_bitwise_on_fixed_seed() {
    // Fixed-seed regression for the O(Δ) swap engine: on the small
    // profile with a real DMopt dose map, the delta and reference
    // engines must make identical decisions and produce bitwise-equal
    // results — placements, assignments, golden summaries, and every
    // counter except the delta-only work-avoided telemetry.
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let dm = dmeopt::optimize(
        &ctx,
        &DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
    )
    .expect("dmopt");
    let base = DoseplConfig {
        top_k: 500,
        rounds: 5,
        swaps_per_round: 3,
        ..DoseplConfig::default()
    };
    let fast = dmeopt::dosepl(
        &ctx,
        &dm.poly_map,
        None,
        -2.0,
        &DoseplConfig {
            engine: dmeopt::SwapEngine::Delta,
            ..base.clone()
        },
    );
    let refr = dmeopt::dosepl(
        &ctx,
        &dm.poly_map,
        None,
        -2.0,
        &DoseplConfig {
            engine: dmeopt::SwapEngine::Reference,
            ..base
        },
    );
    assert!(
        fast.swaps_attempted > 0,
        "regression fixture must exercise the candidate loop"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&fast.placement.x_um), bits(&refr.placement.x_um));
    assert_eq!(bits(&fast.placement.y_um), bits(&refr.placement.y_um));
    assert_eq!(bits(&fast.assignment.dl_nm), bits(&refr.assignment.dl_nm));
    assert_eq!(bits(&fast.assignment.dw_nm), bits(&refr.assignment.dw_nm));
    assert_eq!(
        fast.golden_after.mct_ns.to_bits(),
        refr.golden_after.mct_ns.to_bits()
    );
    assert_eq!(
        fast.golden_after.leakage_uw.to_bits(),
        refr.golden_after.leakage_uw.to_bits()
    );
    assert_eq!(fast.swaps_attempted, refr.swaps_attempted);
    assert_eq!(fast.swaps_accepted, refr.swaps_accepted);
    assert_eq!(fast.rounds_run, refr.rounds_run);
    assert_eq!(fast.swap_evals, refr.swap_evals);
    // The delta engine replays rejected candidates from its undo journal
    // (zero gate evaluations); the reference engine re-times the cone
    // back. Identical results above, strictly less work here.
    assert!(
        fast.incremental_gate_evals <= refr.incremental_gate_evals,
        "delta {} vs reference {}",
        fast.incremental_gate_evals,
        refr.incremental_gate_evals
    );
    assert_eq!(fast.filter_tallies, refr.filter_tallies);
    assert!(fast.delta_stats.delta_engine && !refr.delta_stats.delta_engine);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn dosepl_enum_modes_agree_bitwise_on_fixed_seed() {
    // Fixed-seed regression for the O(K) incremental path enumerator:
    // on the small profile with a real DMopt dose map, the heap-driven
    // top-K selection must drive the engine to the same decisions as
    // the round-start full analyze + full-sort walk — bitwise-equal
    // placements, assignments, golden summaries and loop counters.
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let dm = dmeopt::optimize(
        &ctx,
        &DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
    )
    .expect("dmopt");
    let base = DoseplConfig {
        top_k: 500,
        rounds: 5,
        swaps_per_round: 3,
        engine: dmeopt::SwapEngine::Delta,
        ..DoseplConfig::default()
    };
    let inc = dmeopt::dosepl(
        &ctx,
        &dm.poly_map,
        None,
        -2.0,
        &DoseplConfig {
            path_enum: dmeopt::PathEnum::Incremental,
            ..base.clone()
        },
    );
    let full = dmeopt::dosepl(
        &ctx,
        &dm.poly_map,
        None,
        -2.0,
        &DoseplConfig {
            path_enum: dmeopt::PathEnum::Full,
            ..base
        },
    );
    assert!(
        inc.swaps_attempted > 0,
        "regression fixture must exercise the candidate loop"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&inc.placement.x_um), bits(&full.placement.x_um));
    assert_eq!(bits(&inc.placement.y_um), bits(&full.placement.y_um));
    assert_eq!(bits(&inc.assignment.dl_nm), bits(&full.assignment.dl_nm));
    assert_eq!(bits(&inc.assignment.dw_nm), bits(&full.assignment.dw_nm));
    assert_eq!(
        inc.golden_after.mct_ns.to_bits(),
        full.golden_after.mct_ns.to_bits()
    );
    assert_eq!(
        inc.golden_after.leakage_uw.to_bits(),
        full.golden_after.leakage_uw.to_bits()
    );
    assert_eq!(inc.swaps_attempted, full.swaps_attempted);
    assert_eq!(inc.swaps_accepted, full.swaps_accepted);
    assert_eq!(inc.rounds_run, full.rounds_run);
    assert_eq!(inc.swap_evals, full.swap_evals);
    assert_eq!(inc.filter_tallies, full.filter_tallies);
    // Mode accounting: the incremental run never paid a round-start full
    // analyze and dispositioned every heap pop; the full-walk run never
    // touched the heap.
    assert_eq!(inc.enum_tallies.full_walks, 0);
    assert_eq!(inc.enum_tallies.full_analyze_skipped as usize, inc.rounds_run);
    assert_eq!(
        inc.enum_tallies.endpoints_popped,
        inc.enum_tallies.endpoints_selected + inc.enum_tallies.stale_discards
    );
    assert_eq!(full.enum_tallies.full_analyze_skipped, 0);
    assert_eq!(full.enum_tallies.full_walks as usize, full.rounds_run);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn slack_profile_improves_after_optimization() {
    // The Fig. 10 storyline: the worst-slack region thins out after DMopt.
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let setup: Vec<f64> = design
        .netlist
        .instances
        .iter()
        .map(|i| lib.cell(i.cell_idx).setup_ns(lib.tech()))
        .collect();

    let n = design.netlist.num_instances();
    let before = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::nominal(n),
    );
    let paths_before = top_k_paths(&design.netlist, &before, &setup, 500);

    let cfg = DmoptConfig {
        objective: Objective::MinTiming { xi_uw: 0.0 },
        ..DmoptConfig::default()
    };
    let r = dmeopt::optimize(&ctx, &cfg).expect("optimize");
    let after = analyze(&lib, &design.netlist, &placement, &r.assignment);
    let paths_after = top_k_paths(&design.netlist, &after, &setup, 500);

    // Same number of paths, but measured against the ORIGINAL MCT the
    // optimized design has strictly positive worst slack.
    let worst_after = paths_after
        .iter()
        .map(|p| p.delay_ns)
        .fold(0.0f64, f64::max);
    let worst_before = paths_before
        .iter()
        .map(|p| p.delay_ns)
        .fold(0.0f64, f64::max);
    assert!(
        worst_after < worst_before,
        "{worst_after} !< {worst_before}"
    );

    // Criticality percentages (Table VII machinery) drop at 95% threshold.
    let pct_before = report::criticality_percentages(&paths_before, before.mct_ns, &[0.95])[0];
    let pct_after = report::criticality_percentages(&paths_after, before.mct_ns, &[0.95])[0];
    assert!(
        pct_after <= pct_before,
        "95% criticality went from {pct_before}% to {pct_after}%"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn bias_headroom_bound_holds() {
    // Fig. 10's "Bias" curve: forcing +5% dose on all top-path gates
    // bounds what any equipment-feasible dose map can reach.
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let setup: Vec<f64> = design
        .netlist
        .instances
        .iter()
        .map(|i| lib.cell(i.cell_idx).setup_ns(lib.tech()))
        .collect();
    let n = design.netlist.num_instances();
    let nominal = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::nominal(n),
    );
    let paths = top_k_paths(&design.netlist, &nominal, &setup, 1000);

    // Bias: ΔL = −10 nm for every cell on a top path.
    let mut bias = GeometryAssignment::nominal(n);
    for p in &paths {
        for &c in &p.instances {
            bias.dl_nm[c.0 as usize] = -10.0;
        }
    }
    let bias_report = analyze(&lib, &design.netlist, &placement, &bias);

    let cfg = DmoptConfig {
        objective: Objective::MinTiming {
            xi_uw: f64::INFINITY,
        },
        ..DmoptConfig::default()
    };
    let r = dmeopt::optimize(&ctx, &cfg).expect("optimize");
    // The dose map must not beat the bias bound (it obeys smoothness and
    // affects non-path cells too).
    assert!(
        r.golden_after.mct_ns >= bias_report.mct_ns - 1e-9,
        "optimized {} beats the bias bound {}",
        r.golden_after.mct_ns,
        bias_report.mct_ns
    );
    // But it must close part of the gap from nominal.
    assert!(r.golden_after.mct_ns < nominal.mct_ns);
}
