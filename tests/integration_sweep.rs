//! Cross-crate integration: the uniform dose sweep (Tables II/III shape)
//! on generated, placed designs with golden STA.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dme_sta::{analyze, GeometryAssignment};

/// Table II/III shape: monotone trade-off with the calibrated endpoint
/// ratios, now measured at the full-chip level (wire delay, slew
/// propagation and fanout loading included).
#[test]
fn uniform_sweep_matches_paper_shape_65nm() {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let n = design.netlist.num_instances();

    let nominal = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::nominal(n),
    );
    // +5% dose: ΔL = −10 nm.
    let fast = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::uniform(n, -10.0, 0.0),
    );
    // −5% dose: ΔL = +10 nm.
    let slow = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::uniform(n, 10.0, 0.0),
    );

    // Paper Table II: MCT ×0.871 / ×1.114, leakage ×2.55 / ×0.624.
    let fast_mct = fast.mct_ns / nominal.mct_ns;
    let slow_mct = slow.mct_ns / nominal.mct_ns;
    assert!(
        (fast_mct - 0.871).abs() < 0.05,
        "fast MCT ratio = {fast_mct}"
    );
    assert!(
        (slow_mct - 1.114).abs() < 0.05,
        "slow MCT ratio = {slow_mct}"
    );
    let fast_leak = fast.total_leakage_uw / nominal.total_leakage_uw;
    let slow_leak = slow.total_leakage_uw / nominal.total_leakage_uw;
    assert!(
        (fast_leak - 2.55).abs() < 0.35,
        "fast leakage ratio = {fast_leak}"
    );
    assert!(
        (slow_leak - 0.624).abs() < 0.08,
        "slow leakage ratio = {slow_leak}"
    );
}

/// The sweep is monotone in dose on both axes — the structural fact that
/// makes uniform dose a pure trade-off and design-aware maps worthwhile.
#[test]
fn uniform_sweep_monotone_in_dose() {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::tiny(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let n = design.netlist.num_instances();
    let mut prev_mct = f64::INFINITY;
    let mut prev_leak = 0.0f64;
    for step in 0..=10 {
        let dose = -5.0 + step as f64; // −5% … +5%
        let dl = -2.0 * dose;
        let r = analyze(
            &lib,
            &design.netlist,
            &placement,
            &GeometryAssignment::uniform(n, dl, 0.0),
        );
        assert!(
            r.mct_ns <= prev_mct + 1e-12,
            "MCT must fall as dose rises (step {step})"
        );
        assert!(
            r.total_leakage_uw >= prev_leak - 1e-12,
            "leakage must rise with dose (step {step})"
        );
        prev_mct = r.mct_ns;
        prev_leak = r.total_leakage_uw;
    }
}

/// 90 nm designs show the gentler Table III ratios.
#[test]
fn uniform_sweep_matches_paper_shape_90nm() {
    let lib = Library::standard(Technology::n90());
    let mut profile = profiles::aes90().scaled(0.06);
    profile.seed = 90;
    let design = gen::generate(&profile, &lib);
    let placement = dme_placement::place(&design, &lib);
    let n = design.netlist.num_instances();

    let nominal = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::nominal(n),
    );
    let fast = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::uniform(n, -10.0, 0.0),
    );
    let slow = analyze(
        &lib,
        &design.netlist,
        &placement,
        &GeometryAssignment::uniform(n, 10.0, 0.0),
    );

    // Paper Table III: MCT ×0.883 / ×1.100, leakage ×1.90 / ×0.699.
    let fast_leak = fast.total_leakage_uw / nominal.total_leakage_uw;
    let slow_leak = slow.total_leakage_uw / nominal.total_leakage_uw;
    assert!(
        (fast_leak - 1.90).abs() < 0.25,
        "fast leakage ratio = {fast_leak}"
    );
    assert!(
        (slow_leak - 0.699).abs() < 0.08,
        "slow leakage ratio = {slow_leak}"
    );
    let fast_mct = fast.mct_ns / nominal.mct_ns;
    // Full-chip wire delay dilutes the dose lever relative to the
    // paper's gate-level ratio, and displacement-preserving
    // legalization keeps the global placement's spacing (rather than
    // packing rows left), so the wire share here sits slightly above
    // the packed-placement calibration.
    assert!(
        (fast_mct - 0.883).abs() < 0.06,
        "fast MCT ratio = {fast_mct}"
    );
    // 90 nm leakage swings less than 65 nm (compare Table II vs III).
    assert!(fast_leak < 2.3);
}
