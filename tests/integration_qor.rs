//! End-to-end QoR sentinel: runs the `dmeopt` binary twice, ingests the
//! manifests into a history file, and exercises the three `qor` verbs —
//! a pure-noise rerun must pass the gate (exit 0), an injected leakage
//! regression well beyond 3×MAD must trip it (exit 3), and `qor report`
//! must emit a self-contained HTML dashboard. A final case crashes the
//! binary to verify the panic hook leaves a flushed trace and a
//! `status: "panicked"` manifest stub.

use dme_obs::json::{parse, Value};
use std::process::Command;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dme_qor_it_{}_{name}", std::process::id()))
}

fn dmeopt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmeopt"))
}

fn run_flow(report: &std::path::Path) {
    let out = dmeopt()
        .args([
            "flow",
            "--profile",
            "tiny",
            "--report",
            report.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("dmeopt runs");
    assert!(
        out.status.success(),
        "dmeopt flow failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn qor_gate_passes_reruns_and_trips_on_injected_regression() {
    let r1 = tmp("run1.json");
    let r2 = tmp("run2.json");
    let history = tmp("history.jsonl");
    let _ = std::fs::remove_file(&history);
    run_flow(&r1);
    run_flow(&r2);

    // Ingest both manifests with pinned metadata.
    for (path, sha, ts) in [(&r1, "aaaa111", "1000"), (&r2, "bbbb222", "2000")] {
        let out = dmeopt()
            .args([
                "qor",
                "ingest",
                path.to_str().expect("utf8 path"),
                "--history",
                history.to_str().expect("utf8 path"),
                "--git-sha",
                sha,
                "--ts",
                ts,
            ])
            .output()
            .expect("qor ingest runs");
        assert!(
            out.status.success(),
            "qor ingest failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text = std::fs::read_to_string(&history).expect("history written");
    let records = dme_qor::parse_history(&text).expect("history parses");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].git_sha, "aaaa111");
    assert!(records[1].qor.contains_key("flow/delta_leakage_uw"));

    // Pure-noise rerun: the second manifest against the full history
    // must pass the gate. The flow is deterministic, so QoR metrics
    // match exactly and wall-clock jitter stays under the 25% floor.
    let out = dmeopt()
        .args([
            "qor",
            "diff",
            r2.to_str().expect("utf8 path"),
            history.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("qor diff runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "noise rerun flagged: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("**Verdict: OK**"), "stdout: {stdout}");

    // Inject a leakage regression far beyond 3×MAD and rerun the gate.
    let mut bad = records[1].clone();
    let leak = bad.qor["flow/final_leakage_uw"];
    bad.qor.insert("flow/final_leakage_uw".into(), leak * 1.5);
    let bad_path = tmp("bad_run.jsonl");
    std::fs::write(&bad_path, bad.to_json_line() + "\n").expect("write tampered run");
    let out = dmeopt()
        .args([
            "qor",
            "diff",
            bad_path.to_str().expect("utf8 path"),
            history.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("qor diff runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "gate must exit 3 on regression: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("**Verdict: REGRESSED**"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("flow/final_leakage_uw"), "stdout: {stdout}");

    // `--informational` reports the same verdict but exits 0 (CI soak mode).
    let out = dmeopt()
        .args([
            "qor",
            "diff",
            bad_path.to_str().expect("utf8 path"),
            history.to_str().expect("utf8 path"),
            "--informational",
        ])
        .output()
        .expect("qor diff runs");
    assert!(out.status.success(), "informational mode must exit 0");

    // Dashboard: self-contained HTML, no external fetches.
    let dash = tmp("dash.html");
    let md = tmp("summary.md");
    let out = dmeopt()
        .args([
            "qor",
            "report",
            "--history",
            history.to_str().expect("utf8 path"),
            "--manifest",
            r2.to_str().expect("utf8 path"),
            "--out",
            dash.to_str().expect("utf8 path"),
            "--md",
            md.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("qor report runs");
    assert!(
        out.status.success(),
        "qor report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(&dash).expect("dashboard written");
    assert!(html.starts_with("<!doctype html>"), "not an HTML document");
    assert!(html.contains("<svg"), "dashboard has no inline charts");
    for forbidden in ["http://", "https://", "<script src", "<link"] {
        assert!(
            !html.contains(forbidden),
            "external reference {forbidden:?}"
        );
    }
    let summary = std::fs::read_to_string(&md).expect("markdown written");
    assert!(summary.contains("**Verdict:"), "markdown: {summary}");

    for p in [&r1, &r2, &history, &bad_path, &dash, &md] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn panic_hook_flushes_trace_and_writes_panicked_manifest() {
    let report = tmp("panic_run.json");
    let trace = tmp("panic_trace.jsonl");
    let out = dmeopt()
        .args([
            "flow",
            "--profile",
            "tiny",
            "--report",
            report.to_str().expect("utf8 path"),
            "--trace-json",
            trace.to_str().expect("utf8 path"),
        ])
        .env("DME_TEST_PANIC", "1")
        .output()
        .expect("dmeopt runs");
    assert!(!out.status.success(), "injected panic must fail the run");

    // The manifest stub marks the run as panicked.
    let text = std::fs::read_to_string(&report).expect("panic manifest written");
    let m = parse(&text).expect("manifest parses");
    let meta = m.get("meta").expect("meta");
    assert_eq!(meta.get("status").and_then(Value::as_str), Some("panicked"));

    // The trace sink was flushed: every line parses, and the panic
    // itself is on the stream as an error log event.
    let events = std::fs::read_to_string(&trace).expect("trace written");
    let mut saw_panic = false;
    for line in events.lines().filter(|l| !l.trim().is_empty()) {
        let ev = parse(line).expect("event parses");
        if ev.get("type").and_then(Value::as_str) == Some("log")
            && ev
                .get("msg")
                .and_then(Value::as_str)
                .is_some_and(|m| m.contains("panic"))
        {
            saw_panic = true;
        }
    }
    assert!(saw_panic, "panic log event missing from trace: {events}");

    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&trace);
}
