//! Cross-crate integration: DMopt end to end on a placed design — the QP
//! and QCP formulations, both layer choices, snapping and golden signoff.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles, Design};
use dme_placement::Placement;
use dmeopt::{optimize, DmoptConfig, Layers, Objective, OptContext};

fn setup() -> (Library, Design, Placement) {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    (lib, design, placement)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn qp_recovers_leakage_at_constant_timing() {
    let (lib, design, placement) = setup();
    let ctx = OptContext::new(&lib, &design, &placement);
    let r = optimize(&ctx, &DmoptConfig::default()).expect("QP optimize");
    let (mct_imp, leak_imp) = r.golden_after.improvement_over(&r.golden_before);
    assert!(
        leak_imp > 3.0,
        "expected noticeable leakage recovery, got {leak_imp}%"
    );
    assert!(mct_imp > -0.25, "timing degraded by {}%", -mct_imp);
    // Equipment feasibility of the produced map (snap can add one step).
    r.poly_map
        .check(-5.0, 5.0, 2.5)
        .expect("dose map constraints");
    // Non-trivial map: not all grids at the same dose.
    let min = r
        .poly_map
        .dose_pct
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = r
        .poly_map
        .dose_pct
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max > min, "dose map collapsed to uniform");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn qcp_speeds_up_without_leakage_increase() {
    let (lib, design, placement) = setup();
    let ctx = OptContext::new(&lib, &design, &placement);
    let cfg = DmoptConfig {
        objective: Objective::MinTiming { xi_uw: 0.0 },
        ..DmoptConfig::default()
    };
    let r = optimize(&ctx, &cfg).expect("QCP optimize");
    let (mct_imp, leak_imp) = r.golden_after.improvement_over(&r.golden_before);
    assert!(mct_imp > 1.0, "expected timing improvement, got {mct_imp}%");
    assert!(leak_imp > -3.0, "leakage increased by {}%", -leak_imp);
    assert!(r.solved_t_ns.is_some());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn both_layers_do_no_worse_than_poly_only() {
    let (lib, design, placement) = setup();
    let ctx = OptContext::new(&lib, &design, &placement);
    let poly = optimize(
        &ctx,
        &DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 10.0,
            ..DmoptConfig::default()
        },
    )
    .expect("poly");
    let both = optimize(
        &ctx,
        &DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 10.0,
            layers: Layers::PolyAndActive,
            ..DmoptConfig::default()
        },
    )
    .expect("both");
    assert!(both.active_map.is_some());
    assert!(poly.active_map.is_none());
    // The paper's Table V: width modulation helps only slightly (and can
    // even hurt marginally through fitting noise); allow a small band.
    assert!(
        both.golden_after.mct_ns <= poly.golden_after.mct_ns * 1.01,
        "both-layers MCT {} vs poly {}",
        both.golden_after.mct_ns,
        poly.golden_after.mct_ns
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn granularity_trend_matches_table4() {
    let (lib, design, placement) = setup();
    let ctx = OptContext::new(&lib, &design, &placement);
    let mut leaks = Vec::new();
    for g in [5.0, 10.0, 30.0] {
        let r = optimize(
            &ctx,
            &DmoptConfig {
                grid_g_um: g,
                ..DmoptConfig::default()
            },
        )
        .expect("optimize");
        leaks.push(r.golden_after.leakage_uw);
    }
    // Finer grids never lose (small tolerance for snapping noise).
    assert!(
        leaks[0] <= leaks[1] * 1.02,
        "5 µm {} vs 10 µm {}",
        leaks[0],
        leaks[1]
    );
    assert!(
        leaks[1] <= leaks[2] * 1.02,
        "10 µm {} vs 30 µm {}",
        leaks[1],
        leaks[2]
    );
    // And the coarsest grid must visibly lag the finest.
    assert!(leaks[0] < leaks[2], "no granularity benefit at all");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
fn pruning_is_sound_on_qcp_too() {
    let (lib, design, placement) = setup();
    let ctx = OptContext::new(&lib, &design, &placement);
    let cfg = DmoptConfig {
        objective: Objective::MinTiming { xi_uw: 0.0 },
        grid_g_um: 10.0,
        prune: true,
        ..DmoptConfig::default()
    };
    let r = optimize(&ctx, &cfg).expect("pruned QCP");
    // Sound: golden timing must not regress vs nominal, leakage bounded.
    assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns);
    assert!(r.golden_after.leakage_uw <= r.golden_before.leakage_uw * 1.05);
    assert!(r.num_kept < design.netlist.num_instances());
}
